//! Property tests for scenario construction: invariants must hold for
//! any seed and any roster subset.

use ir_workload::{build, roster, Calibration, Category, MBPS};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn scenario_invariants_hold_for_any_seed(
        seed in any::<u64>(),
        n_clients in 1usize..6,
        n_relays in 1usize..6,
        n_servers in 1usize..4,
    ) {
        let sc = build(
            seed,
            &roster::CLIENTS[..n_clients],
            &roster::INTERMEDIATES[..n_relays],
            &roster::SERVERS[..n_servers],
            Calibration::default(),
            false,
        );
        // Exact link inventory.
        prop_assert_eq!(
            sc.network.topology().link_count(),
            n_clients * n_servers + n_clients * n_relays + n_relays * n_servers
        );
        // Every client profiled, in its band, with a positive rate.
        for &c in &sc.clients {
            let p = sc.profile(c);
            prop_assert!(p.base_rate > 0.0);
            let mbps = p.base_rate / MBPS;
            match p.category {
                Category::Low => prop_assert!(mbps <= 1.5),
                Category::Medium => prop_assert!(mbps > 1.5 && mbps <= 3.0),
                Category::High => prop_assert!(mbps > 3.0),
            }
        }
        // Relay qualities positive and finite.
        for q in sc.relay_quality.values() {
            prop_assert!(*q > 0.0 && q.is_finite());
        }
        // Every path the experiments need resolves.
        for &c in &sc.clients {
            for &s in &sc.servers {
                prop_assert!(ir_core::PathSpec::direct(c, s)
                    .resolve(sc.network.topology())
                    .is_some());
                for &v in &sc.relays {
                    prop_assert!(ir_core::PathSpec::indirect(c, s, v)
                        .resolve(sc.network.topology())
                        .is_some());
                }
            }
        }
    }

    #[test]
    fn force_low_med_never_yields_high(seed in any::<u64>()) {
        let sc = build(
            seed,
            &roster::SELECTION_CLIENTS[..2],
            &roster::INTERMEDIATES[..3],
            &roster::SERVERS[..1],
            Calibration::default(),
            true,
        );
        for &c in &sc.clients {
            prop_assert_ne!(sc.profile(c).category, Category::High);
        }
    }

    #[test]
    fn link_rates_stay_positive_over_study_window(seed in any::<u64>()) {
        use ir_simnet::time::{SimDuration, SimTime};
        use ir_simnet::tracer::trace_link;
        let sc = build(
            seed,
            &roster::CLIENTS[..2],
            &roster::INTERMEDIATES[..2],
            &roster::SERVERS[..1],
            Calibration::default(),
            false,
        );
        for l in 0..sc.network.topology().link_count() as u32 {
            let tr = trace_link(
                &sc.network,
                ir_simnet::topology::LinkId(l),
                SimTime::ZERO,
                SimTime::from_secs(36_000),
                SimDuration::from_secs(1800),
            );
            prop_assert!(tr.rates.iter().all(|&r| r >= ir_simnet::bandwidth::MIN_RATE));
        }
    }
}
