//! Randomized tests for scenario construction: invariants must hold
//! for any seed and any roster subset.
//!
//! These were proptest-based; the offline build has no proptest, so the
//! same invariants are checked over seeded random case sweeps (every
//! failure reproduces from the printed case number).

use ir_workload::{build, roster, Calibration, Category, MBPS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn scenario_invariants_hold_for_any_seed() {
    for case in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0x5C_0000 + case);
        let seed: u64 = rng.gen();
        let n_clients = rng.gen_range(1..6usize);
        let n_relays = rng.gen_range(1..6usize);
        let n_servers = rng.gen_range(1..4usize);
        let sc = build(
            seed,
            &roster::CLIENTS[..n_clients],
            &roster::INTERMEDIATES[..n_relays],
            &roster::SERVERS[..n_servers],
            Calibration::default(),
            false,
        );
        // Exact link inventory.
        assert_eq!(
            sc.network.topology().link_count(),
            n_clients * n_servers + n_clients * n_relays + n_relays * n_servers,
            "case {case}"
        );
        // Every client profiled, in its band, with a positive rate.
        for &c in &sc.clients {
            let p = sc.profile(c);
            assert!(p.base_rate > 0.0, "case {case}");
            let mbps = p.base_rate / MBPS;
            match p.category {
                Category::Low => assert!(mbps <= 1.5, "case {case}: {mbps}"),
                Category::Medium => {
                    assert!(mbps > 1.5 && mbps <= 3.0, "case {case}: {mbps}")
                }
                Category::High => assert!(mbps > 3.0, "case {case}: {mbps}"),
            }
        }
        // Relay qualities positive and finite.
        for q in sc.relay_quality.values() {
            assert!(*q > 0.0 && q.is_finite(), "case {case}");
        }
        // Every path the experiments need resolves.
        for &c in &sc.clients {
            for &s in &sc.servers {
                assert!(
                    ir_core::PathSpec::direct(c, s)
                        .resolve(sc.network.topology())
                        .is_some(),
                    "case {case}"
                );
                for &v in &sc.relays {
                    assert!(
                        ir_core::PathSpec::indirect(c, s, v)
                            .resolve(sc.network.topology())
                            .is_some(),
                        "case {case}"
                    );
                }
            }
        }
    }
}

#[test]
fn force_low_med_never_yields_high() {
    for case in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0x5C_1000 + case);
        let seed: u64 = rng.gen();
        let sc = build(
            seed,
            &roster::SELECTION_CLIENTS[..2],
            &roster::INTERMEDIATES[..3],
            &roster::SERVERS[..1],
            Calibration::default(),
            true,
        );
        for &c in &sc.clients {
            assert_ne!(sc.profile(c).category, Category::High, "case {case}");
        }
    }
}

#[test]
fn link_rates_stay_positive_over_study_window() {
    use ir_simnet::time::{SimDuration, SimTime};
    use ir_simnet::tracer::trace_link;
    for case in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(0x5C_2000 + case);
        let seed: u64 = rng.gen();
        let sc = build(
            seed,
            &roster::CLIENTS[..2],
            &roster::INTERMEDIATES[..2],
            &roster::SERVERS[..1],
            Calibration::default(),
            false,
        );
        for l in 0..sc.network.topology().link_count() as u32 {
            let tr = trace_link(
                &sc.network,
                ir_simnet::topology::LinkId(l),
                SimTime::ZERO,
                SimTime::from_secs(36_000),
                SimDuration::from_secs(1800),
            );
            assert!(
                tr.rates
                    .iter()
                    .all(|&r| r >= ir_simnet::bandwidth::MIN_RATE),
                "case {case}, link {l}"
            );
        }
    }
}
