//! Scenario construction: topology + calibrated bandwidth processes.
//!
//! A scenario wires the paper's node roster into an
//! [`ir_simnet::sim::Network`] whose per-path available-bandwidth
//! processes are calibrated so the paper's qualitative regime holds
//! (DESIGN.md §5):
//!
//! * clients' **direct** paths sit in the Low/Medium/High bands of
//!   §2.2, with a regime-switching temporal structure; "variable"
//!   clients swing across wide regimes (they generate Table I's
//!   penalty tail);
//! * **overlay** links (client → relay) have lognormal rates that do
//!   *not* scale with the client's direct rate — this independence is
//!   what makes improvement inversely related to client throughput
//!   (Fig 3) — with mild AR(1) wander and rare level jumps (Fig 4);
//! * **relay → server** links are fast and never the indirect
//!   bottleneck (§3.2's stated assumption).
//!
//! All links use [`Sharing::PerFlow`]: process values are available
//! bandwidth as seen by one more TCP flow, background multiplexing
//! already included.

use crate::category::{Category, Variability, MBPS};
use crate::roster::{ClientSite, RelaySite, ServerSite, CLIENTS, INTERMEDIATES, SERVERS};
use ir_simnet::bandwidth::{
    Ar1LogProcess, BandwidthProcess, ConstantProcess, JumpMixProcess, RegimeSwitchingProcess,
};
use ir_simnet::sim::Network;
use ir_simnet::time::SimDuration;
use ir_simnet::topology::{NodeId, NodeKind, Sharing, Topology};
use ir_stats::sampling::{LogNormal, Sample};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Everything tunable about the synthetic network. Defaults are the
/// calibrated values used by the experiment harness; the ablation
/// benches perturb individual fields.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// Median direct-path rate range for Low clients (Mbps).
    pub low_mbps: (f64, f64),
    /// Median direct-path rate range for Medium clients (Mbps).
    pub med_mbps: (f64, f64),
    /// Median direct-path rate range for High clients (Mbps).
    pub high_mbps: (f64, f64),
    /// Fraction of clients assigned Medium.
    pub frac_medium: f64,
    /// Fraction of clients assigned High.
    pub frac_high: f64,
    /// Fraction of Low/Medium clients with Variable direct paths.
    pub var_frac_low_med: f64,
    /// Fraction of High clients with Variable direct paths (the paper
    /// finds penalties concentrate on High clients, i.e. this is
    /// large).
    pub var_frac_high: f64,
    /// Regime level multipliers for Stable clients.
    pub stable_levels: [f64; 3],
    /// Regime level multipliers for Variable clients.
    pub variable_levels: [f64; 3],
    /// Regime level multipliers for Variable **High-throughput**
    /// clients: deeper dips and higher peaks. These clients generate
    /// Table I's heavy penalty tail — the probe catches a deep dip,
    /// selects a relay, and the direct path then recovers several-fold.
    pub high_variable_levels: [f64; 3],
    /// Mean regime dwell per level for Stable clients (seconds),
    /// aligned with `stable_levels`.
    pub stable_hold_secs: [f64; 3],
    /// Mean regime dwell per level for Variable clients (seconds),
    /// aligned with `variable_levels`. The low regime's dwell is kept
    /// short: brief dips are what convert probe-time mispredictions
    /// into Table I's penalties instead of sustained >100% gains.
    pub variable_hold_secs: [f64; 3],
    /// Per-segment lognormal noise sigma, Stable.
    pub stable_noise: f64,
    /// Per-segment lognormal noise sigma, Variable.
    pub variable_noise: f64,
    /// Global median of overlay (client→relay) link rates (Mbps),
    /// before the client access-capacity clamp.
    pub overlay_median_mbps: f64,
    /// Median headroom of a client's access capacity over its typical
    /// direct-path rate. An overlay path cannot beat the client's own
    /// access link, so indirect rates clamp at
    /// `base_rate × headroom` — this is what keeps improvements in the
    /// paper's 0–100% band rather than unbounded.
    pub access_headroom_median: f64,
    /// Lognormal sigma of the per-client access headroom.
    pub access_headroom_sigma: f64,
    /// Lognormal sigma of per-relay quality factors (creates the
    /// "favoured handful" of Table II).
    pub relay_quality_sigma: f64,
    /// Lognormal sigma of per-(client, relay) pair factors.
    pub pair_sigma: f64,
    /// AR(1) persistence of overlay link rates.
    pub overlay_phi: f64,
    /// AR(1) innovation sigma of overlay link rates.
    pub overlay_sigma: f64,
    /// AR(1) sampling tick (seconds).
    pub overlay_tick_secs: f64,
    /// Mean time between overlay jump episodes (seconds).
    pub jump_arrival_secs: f64,
    /// Mean overlay jump episode length (seconds).
    pub jump_duration_secs: f64,
    /// Rate multiplier during an overlay jump episode.
    pub jump_factor: f64,
    /// Relay→server rate range (Mbps) — fast, never the bottleneck.
    pub relay_server_mbps: (f64, f64),
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            low_mbps: (0.45, 1.4),
            med_mbps: (1.6, 2.9),
            high_mbps: (3.2, 7.5),
            frac_medium: 0.25,
            frac_high: 0.15,
            var_frac_low_med: 0.20,
            var_frac_high: 0.80,
            stable_levels: [0.90, 1.0, 1.15],
            variable_levels: [0.45, 1.0, 1.9],
            high_variable_levels: [0.22, 1.0, 2.4],
            stable_hold_secs: [250.0, 550.0, 250.0],
            variable_hold_secs: [40.0, 900.0, 120.0],
            stable_noise: 0.12,
            variable_noise: 0.30,
            overlay_median_mbps: 0.95,
            access_headroom_median: 1.24,
            access_headroom_sigma: 0.12,
            relay_quality_sigma: 0.60,
            pair_sigma: 0.85,
            overlay_phi: 0.85,
            overlay_sigma: 0.04,
            overlay_tick_secs: 60.0,
            jump_arrival_secs: 9000.0,
            jump_duration_secs: 420.0,
            jump_factor: 0.30,
            relay_server_mbps: (30.0, 120.0),
        }
    }
}

/// Hidden ground-truth profile of a client in a scenario. Experiments
/// must *measure* category/variability like the paper did; the profile
/// is for assertions and debugging.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientProfile {
    /// Intended throughput category.
    pub category: Category,
    /// Intended variability class.
    pub variability: Variability,
    /// Median direct-path rate before server factors, bytes/sec.
    pub base_rate: f64,
}

/// A built scenario: the network plus the node-id bookkeeping every
/// experiment needs.
pub struct Scenario {
    /// The simulated network, processes attached.
    pub network: Network,
    /// Client node ids, in roster order.
    pub clients: Vec<NodeId>,
    /// Relay node ids, in roster order.
    pub relays: Vec<NodeId>,
    /// Server node ids, in roster order.
    pub servers: Vec<NodeId>,
    /// Ground-truth client profiles.
    pub profiles: BTreeMap<NodeId, ClientProfile>,
    /// Ground-truth per-relay quality factors.
    pub relay_quality: BTreeMap<NodeId, f64>,
    /// The calibration used.
    pub cal: Calibration,
}

impl Scenario {
    /// Node id of a client by roster name.
    pub fn client(&self, name: &str) -> NodeId {
        self.network
            .topology()
            .node_by_name(name)
            .unwrap_or_else(|| panic!("no such node {name}"))
    }

    /// Ground-truth profile of a client.
    pub fn profile(&self, client: NodeId) -> &ClientProfile {
        &self.profiles[&client]
    }

    /// Name of a node.
    pub fn name(&self, id: NodeId) -> &str {
        &self.network.topology().node(id).name
    }
}

/// SplitMix64: cheap deterministic sub-seed derivation.
fn sub_seed(seed: u64, tag: u64) -> u64 {
    let mut z = seed ^ tag.wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn pick_range(rng: &mut StdRng, (lo, hi): (f64, f64)) -> f64 {
    rng.gen_range(lo..hi)
}

/// Builds a scenario over explicit rosters.
///
/// `force_low_med` pins every client's category to Low/Medium — the §4
/// study chose its clients for being in those bands.
pub fn build(
    seed: u64,
    clients: &[ClientSite],
    relays: &[RelaySite],
    servers: &[ServerSite],
    cal: Calibration,
    force_low_med: bool,
) -> Scenario {
    let mut topo = Topology::new();
    let client_ids: Vec<NodeId> = clients
        .iter()
        .map(|c| topo.add_node(c.name, NodeKind::Client))
        .collect();
    let relay_ids: Vec<NodeId> = relays
        .iter()
        .map(|r| topo.add_node(r.name, NodeKind::Intermediate))
        .collect();
    let server_ids: Vec<NodeId> = servers
        .iter()
        .map(|s| topo.add_node(s.name, NodeKind::Server))
        .collect();

    // Profiles.
    let mut profiles = BTreeMap::new();
    for (ci, site) in clients.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(sub_seed(seed, 0x1000 + ci as u64));
        let roll: f64 = rng.gen();
        let mut category = if roll < cal.frac_high {
            Category::High
        } else if roll < cal.frac_high + cal.frac_medium {
            Category::Medium
        } else {
            Category::Low
        };
        if force_low_med && category == Category::High {
            category = Category::Medium;
        }
        let band = match category {
            Category::Low => cal.low_mbps,
            Category::Medium => cal.med_mbps,
            Category::High => cal.high_mbps,
        };
        let base_rate = pick_range(&mut rng, band) * MBPS;
        let var_frac = match category {
            Category::High => cal.var_frac_high,
            _ => cal.var_frac_low_med,
        };
        let variability = if rng.gen::<f64>() < var_frac {
            Variability::Variable
        } else {
            Variability::Stable
        };
        profiles.insert(
            client_ids[ci],
            ClientProfile {
                category,
                variability,
                base_rate,
            },
        );
        let _ = site;
    }

    // Relay quality factors.
    let mut relay_quality = BTreeMap::new();
    for (ri, _site) in relays.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(sub_seed(seed, 0x2000 + ri as u64));
        let q = LogNormal::new(0.0, cal.relay_quality_sigma).sample(&mut rng);
        relay_quality.insert(relay_ids[ri], q);
    }

    // Links: all PerFlow (processes are available-bandwidth-per-flow).
    struct PendingLink {
        from: NodeId,
        to: NodeId,
        latency_ms: u64,
        proc_: Box<dyn BandwidthProcess>,
    }
    let mut pending: Vec<PendingLink> = Vec::new();

    // Direct paths: client -> server.
    for (ci, csite) in clients.iter().enumerate() {
        let prof = profiles[&client_ids[ci]];
        for (si, ssite) in servers.iter().enumerate() {
            let tag = 0x10_0000 + (ci as u64) * 64 + si as u64;
            let mut rng = StdRng::seed_from_u64(sub_seed(seed, tag));
            let pair_jitter = LogNormal::new(0.0, 0.10).sample(&mut rng);
            let median = prof.base_rate * ssite.rate_factor * pair_jitter;
            let (mults, holds, noise) = match (prof.variability, prof.category) {
                (Variability::Stable, _) => {
                    (cal.stable_levels, cal.stable_hold_secs, cal.stable_noise)
                }
                (Variability::Variable, Category::High) => (
                    cal.high_variable_levels,
                    cal.variable_hold_secs,
                    cal.variable_noise,
                ),
                (Variability::Variable, _) => (
                    cal.variable_levels,
                    cal.variable_hold_secs,
                    cal.variable_noise,
                ),
            };
            let levels: Vec<f64> = mults.iter().map(|m| m * median).collect();
            let hold_means: Vec<SimDuration> = holds
                .iter()
                .map(|&h| SimDuration::from_secs_f64(h))
                .collect();
            let proc_ = RegimeSwitchingProcess::with_holds(
                levels,
                hold_means,
                noise,
                sub_seed(seed, tag ^ 0xAB),
            );
            pending.push(PendingLink {
                from: client_ids[ci],
                to: server_ids[si],
                latency_ms: csite.us_latency_ms + rng.gen_range(8..14),
                proc_: Box::new(proc_),
            });
        }
    }

    // Overlay links: client -> relay. Raw rates are independent of the
    // client's direct rate (relay quality × pair draw), but clamp at the
    // client's access capacity (see module docs).
    for (ci, csite) in clients.iter().enumerate() {
        let prof = profiles[&client_ids[ci]];
        let access_cap = {
            let mut rng = StdRng::seed_from_u64(sub_seed(seed, 0x4000 + ci as u64));
            prof.base_rate
                * LogNormal::with_median(cal.access_headroom_median, cal.access_headroom_sigma)
                    .sample(&mut rng)
        };
        for (ri, _rsite) in relays.iter().enumerate() {
            let tag = 0x20_0000 + (ci as u64) * 1024 + ri as u64;
            let mut rng = StdRng::seed_from_u64(sub_seed(seed, tag));
            let pair = LogNormal::new(0.0, cal.pair_sigma).sample(&mut rng);
            let raw = cal.overlay_median_mbps * MBPS * relay_quality[&relay_ids[ri]] * pair;
            let median = raw.min(access_cap);
            let base = Ar1LogProcess::new(
                median,
                cal.overlay_phi,
                cal.overlay_sigma,
                SimDuration::from_secs_f64(cal.overlay_tick_secs),
                sub_seed(seed, tag ^ 0xCD),
            );
            let with_jumps = JumpMixProcess::new(
                Box::new(base),
                SimDuration::from_secs_f64(cal.jump_arrival_secs),
                SimDuration::from_secs_f64(cal.jump_duration_secs),
                cal.jump_factor,
                sub_seed(seed, tag ^ 0xEF),
            );
            // University relays sit on research backbones; the path to
            // them is no slower than the commodity path to a commercial
            // site (often slightly faster), so the indirect hop does not
            // pay a structural RTT penalty.
            let overlay_latency = (csite.us_latency_ms as f64 * rng.gen_range(0.92..1.08)) as u64;
            pending.push(PendingLink {
                from: client_ids[ci],
                to: relay_ids[ri],
                latency_ms: overlay_latency.max(2),
                proc_: Box::new(with_jumps),
            });
        }
    }

    // Relay -> server links: fast and steady.
    for (ri, _rsite) in relays.iter().enumerate() {
        for (si, _ssite) in servers.iter().enumerate() {
            let tag = 0x30_0000 + (ri as u64) * 64 + si as u64;
            let mut rng = StdRng::seed_from_u64(sub_seed(seed, tag));
            let rate = pick_range(&mut rng, cal.relay_server_mbps) * MBPS;
            pending.push(PendingLink {
                from: relay_ids[ri],
                to: server_ids[si],
                latency_ms: rng.gen_range(4..14),
                proc_: Box::new(ConstantProcess::new(rate)),
            });
        }
    }

    // Materialise links and attach processes.
    let mut procs: Vec<(ir_simnet::topology::LinkId, Box<dyn BandwidthProcess>)> =
        Vec::with_capacity(pending.len());
    for p in pending {
        let id = topo.add_link_shared(
            p.from,
            p.to,
            SimDuration::from_millis(p.latency_ms),
            Sharing::PerFlow,
        );
        procs.push((id, p.proc_));
    }
    let mut network = Network::new(topo, 1.0);
    for (id, proc_) in procs {
        network.set_link_process(id, proc_);
    }

    Scenario {
        network,
        clients: client_ids,
        relays: relay_ids,
        servers: server_ids,
        profiles,
        relay_quality,
        cal,
    }
}

/// The §2.2 measurement study: 22 international clients, the 21 Table V
/// intermediates, all four web sites.
pub fn planetlab_study(seed: u64) -> Scenario {
    build(
        seed,
        CLIENTS,
        INTERMEDIATES,
        SERVERS,
        Calibration::default(),
        false,
    )
}

/// The §4 selection study: Duke/Italy/Sweden as clients, the 35-relay
/// pool, eBay as the destination.
pub fn selection_study(seed: u64) -> Scenario {
    build(
        seed,
        crate::roster::SELECTION_CLIENTS,
        &crate::roster::selection_relays(),
        &SERVERS[..1], // eBay
        Calibration::default(),
        true,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planetlab_study_has_expected_shape() {
        let s = planetlab_study(7);
        assert_eq!(s.clients.len(), 22);
        assert_eq!(s.relays.len(), 21);
        assert_eq!(s.servers.len(), 4);
        // 22*4 direct + 22*21 overlay + 21*4 relay-server links.
        assert_eq!(s.network.topology().link_count(), 22 * 4 + 22 * 21 + 21 * 4);
        assert_eq!(s.name(s.client("Berlin")), "Berlin");
    }

    #[test]
    fn selection_study_has_expected_shape() {
        let s = selection_study(7);
        assert_eq!(s.clients.len(), 3);
        assert_eq!(s.relays.len(), 35);
        assert_eq!(s.servers.len(), 1);
        // §4 clients are Low/Medium by construction.
        for &c in &s.clients {
            assert_ne!(s.profile(c).category, Category::High);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = planetlab_study(42);
        let b = planetlab_study(42);
        assert_eq!(a.profiles, b.profiles);
        assert_eq!(a.relay_quality, b.relay_quality);
        let c = planetlab_study(43);
        assert_ne!(a.profiles, c.profiles);
    }

    #[test]
    fn profiles_land_in_their_bands() {
        let s = planetlab_study(11);
        for (_, p) in s.profiles.iter() {
            let mbps = p.base_rate / MBPS;
            match p.category {
                Category::Low => assert!(mbps < 1.5, "{mbps}"),
                Category::Medium => assert!((1.5..3.0).contains(&mbps), "{mbps}"),
                Category::High => assert!(mbps >= 3.0, "{mbps}"),
            }
        }
        // With 22 clients, expect a majority Low (frac ~0.60).
        let lows = s
            .profiles
            .values()
            .filter(|p| p.category == Category::Low)
            .count();
        assert!(lows >= 8, "only {lows} Low clients");
    }

    #[test]
    fn relay_quality_is_diverse() {
        let s = planetlab_study(3);
        let qs: Vec<f64> = s.relay_quality.values().copied().collect();
        let max = qs.iter().cloned().fold(f64::MIN, f64::max);
        let min = qs.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min > 2.0, "qualities too uniform: {min}..{max}");
    }

    #[test]
    fn direct_paths_roughly_match_profiles() {
        use ir_core::PathSpec;
        use ir_simnet::sim::NoCap;
        use ir_simnet::time::SimTime;
        let mut s = planetlab_study(5);
        let client = s.clients[0];
        let server = s.servers[0];
        let prof = *s.profile(client);
        let route = PathSpec::direct(client, server)
            .resolve(s.network.topology())
            .unwrap();
        // Long raw transfer (no TCP cap) ≈ mean path rate.
        let id = s.network.start_flow(route, 20_000_000, Box::new(NoCap));
        let done = s
            .network
            .run_flow(id, SimTime::from_secs(36_000))
            .expect("transfer finished");
        let measured = done.throughput();
        // Within a factor of 3 of the profile median (regimes + noise).
        assert!(
            measured > prof.base_rate / 3.0 && measured < prof.base_rate * 3.0,
            "measured {measured}, profile {}",
            prof.base_rate
        );
    }
}
