//! Transfer schedules.
//!
//! §2.2: "downloading a large file from a particular Web site every 6
//! minutes for 10 hours (i.e., 100 times)".
//! §4.2: "downloading the same file from the same Web site every 30
//! seconds for 6 hours (720 times)".

use ir_simnet::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A periodic transfer schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// Time between transfer starts.
    pub period: SimDuration,
    /// Number of transfers.
    pub count: u64,
}

impl Schedule {
    /// The §2.2 schedule: every 6 minutes, 100 times (10 hours).
    pub fn measurement_study() -> Schedule {
        Schedule {
            period: SimDuration::from_secs(6 * 60),
            count: 100,
        }
    }

    /// The §4.2 schedule: every 30 seconds, 720 times (6 hours).
    pub fn selection_study() -> Schedule {
        Schedule {
            period: SimDuration::from_secs(30),
            count: 720,
        }
    }

    /// A shortened schedule for quick runs: same period, fewer
    /// transfers.
    pub fn truncated(self, count: u64) -> Schedule {
        Schedule {
            period: self.period,
            count: count.min(self.count),
        }
    }

    /// A subsampled schedule: `count` transfers spread over the **same
    /// total span**. Preferred for quick runs — path regimes mix over
    /// the full study window instead of the run sitting inside one
    /// regime segment.
    pub fn spread(self, count: u64) -> Schedule {
        let count = count.min(self.count).max(1);
        Schedule {
            period: ir_simnet::time::SimDuration::from_micros(self.span().as_micros() / count),
            count,
        }
    }

    /// Start instants, offset from `start`.
    pub fn instants(&self, start: SimTime) -> impl Iterator<Item = SimTime> + '_ {
        let period = self.period;
        (0..self.count).map(move |i| start + SimDuration::from_micros(period.as_micros() * i))
    }

    /// Total span from the first start to one period past the last.
    pub fn span(&self) -> SimDuration {
        SimDuration::from_micros(self.period.as_micros() * self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_schedules() {
        let m = Schedule::measurement_study();
        assert_eq!(m.count, 100);
        assert_eq!(m.span(), SimDuration::from_secs(36_000)); // 10 h
        let s = Schedule::selection_study();
        assert_eq!(s.count, 720);
        assert_eq!(s.span(), SimDuration::from_secs(21_600)); // 6 h
    }

    #[test]
    fn instants_are_periodic() {
        let s = Schedule {
            period: SimDuration::from_secs(10),
            count: 3,
        };
        let t: Vec<SimTime> = s.instants(SimTime::from_secs(100)).collect();
        assert_eq!(
            t,
            vec![
                SimTime::from_secs(100),
                SimTime::from_secs(110),
                SimTime::from_secs(120)
            ]
        );
    }

    #[test]
    fn spread_preserves_span() {
        let s = Schedule::selection_study().spread(100);
        assert_eq!(s.count, 100);
        assert_eq!(s.span(), Schedule::selection_study().span());
        assert_eq!(s.period, SimDuration::from_secs(216));
        // Spreading to the original count is a no-op.
        let full = Schedule::measurement_study().spread(100);
        assert_eq!(full, Schedule::measurement_study());
    }

    #[test]
    fn truncation_clamps() {
        let s = Schedule::measurement_study().truncated(10);
        assert_eq!(s.count, 10);
        let s2 = Schedule::measurement_study().truncated(1000);
        assert_eq!(s2.count, 100);
    }
}
