//! Fault-plan construction for workload scenarios.
//!
//! The simulator's [`FaultPlan`] is topology-agnostic; this module
//! knows which parts of a built scenario should misbehave. The faults
//! experiment targets the **overlay**: client→relay uplinks suffer
//! outages and brownouts, and relay nodes churn (crash/restart), while
//! access and relay→server links stay healthy — isolating the question
//! the paper's §4 asks of the selection mechanism when intermediates
//! are unreliable.

use crate::scenario::Scenario;
use ir_simnet::faults::{FaultPlan, FaultSpec};
use ir_simnet::topology::LinkId;

/// Builds a seeded fault plan over a scenario's overlay: every
/// client→relay uplink draws link outages/brownouts per `spec`'s link
/// dimensions, and every relay node draws crash/restart churn per its
/// node dimensions. Deterministic in `(spec, seed)` and independent of
/// roster iteration order (each target derives its own sub-seeded
/// stream inside [`FaultPlan::random`]).
pub fn overlay_fault_plan(scenario: &Scenario, spec: &FaultSpec, seed: u64) -> FaultPlan {
    let topo = scenario.network.topology();
    let mut links: Vec<LinkId> = Vec::new();
    for &c in &scenario.clients {
        for &v in &scenario.relays {
            if let Some(l) = topo.link_between(c, v) {
                links.push(l);
            }
        }
    }
    FaultPlan::random(spec, &links, &scenario.relays, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::planetlab_study;
    use ir_simnet::faults::FaultEvent;
    use ir_simnet::time::SimDuration;

    fn spec() -> FaultSpec {
        FaultSpec {
            horizon: SimDuration::from_secs(1800),
            link_mtbf: SimDuration::from_secs(300),
            link_outage_mean: SimDuration::from_secs(30),
            brownout_prob: 0.3,
            brownout_factor: 0.25,
            node_mtbf: SimDuration::from_secs(600),
            node_downtime_mean: SimDuration::from_secs(60),
        }
    }

    #[test]
    fn plan_is_deterministic_and_touches_overlay_only() {
        let scenario = planetlab_study(42);
        let a = overlay_fault_plan(&scenario, &spec(), 7);
        let b = overlay_fault_plan(&scenario, &spec(), 7);
        assert_eq!(a, b, "same (spec, seed) must give the same plan");
        assert!(!a.is_empty(), "paper-scale overlay should draw faults");

        let topo = scenario.network.topology();
        let overlay: std::collections::BTreeSet<_> = scenario
            .clients
            .iter()
            .flat_map(|&c| {
                scenario
                    .relays
                    .iter()
                    .filter_map(move |&v| topo.link_between(c, v))
            })
            .collect();
        for &(_, ev) in a.events() {
            match ev {
                FaultEvent::LinkDown(l) | FaultEvent::LinkUp(l) => {
                    assert!(overlay.contains(&l), "non-overlay link faulted: {l:?}");
                }
                FaultEvent::BrownoutSet { link, .. } => {
                    assert!(overlay.contains(&link), "non-overlay brownout: {link:?}");
                }
                FaultEvent::NodeDown(n) | FaultEvent::NodeUp(n) => {
                    assert!(scenario.relays.contains(&n), "non-relay churned: {n:?}");
                }
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let scenario = planetlab_study(42);
        let a = overlay_fault_plan(&scenario, &spec(), 1);
        let b = overlay_fault_plan(&scenario, &spec(), 2);
        assert_ne!(a, b);
    }
}
