//! Throughput categories and variability classes.
//!
//! §2.2: "We categorize nodes as Low (0–1.5 Mbps), Medium (1.5–3.0
//! Mbps), or High (> 3.0 Mbps) throughput, based on measured average
//! throughput to the targeted destination Web servers on the direct
//! path."

use serde::{Deserialize, Serialize};

/// Bytes per second in one Mbps.
pub const MBPS: f64 = 1e6 / 8.0;

/// The paper's client throughput categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Category {
    /// 0–1.5 Mbps average direct throughput.
    Low,
    /// 1.5–3.0 Mbps.
    Medium,
    /// > 3.0 Mbps.
    High,
}

impl Category {
    /// Classifies a mean direct-path throughput given in **bytes/sec**.
    pub fn of_rate(bytes_per_sec: f64) -> Category {
        let mbps = bytes_per_sec * 8.0 / 1e6;
        if mbps <= 1.5 {
            Category::Low
        } else if mbps <= 3.0 {
            Category::Medium
        } else {
            Category::High
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Category::Low => "Low",
            Category::Medium => "Medium",
            Category::High => "High",
        }
    }
}

/// Temporal variability class of a client's direct paths. The paper's
/// Table I filters on "highly variable direct throughputs"; we
/// operationalise the same split with a coefficient-of-variation
/// threshold (see [`VARIABILITY_COV_THRESHOLD`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variability {
    /// Direct-path throughput holds steady between transfers.
    Stable,
    /// Direct-path throughput swings across regimes.
    Variable,
}

/// Coefficient-of-variation threshold above which a client's measured
/// direct throughput series is classed [`Variability::Variable`].
pub const VARIABILITY_COV_THRESHOLD: f64 = 0.28;

impl Variability {
    /// Classifies a measured throughput series by its coefficient of
    /// variation.
    pub fn of_series(throughputs: &[f64]) -> Variability {
        let stats: ir_stats::OnlineStats = throughputs.iter().copied().collect();
        if stats.count() >= 2 && stats.cov() > VARIABILITY_COV_THRESHOLD {
            Variability::Variable
        } else {
            Variability::Stable
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Variability::Stable => "stable",
            Variability::Variable => "variable",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_boundaries() {
        assert_eq!(Category::of_rate(0.5 * MBPS), Category::Low);
        assert_eq!(Category::of_rate(1.5 * MBPS), Category::Low);
        assert_eq!(Category::of_rate(1.6 * MBPS), Category::Medium);
        assert_eq!(Category::of_rate(3.0 * MBPS), Category::Medium);
        assert_eq!(Category::of_rate(3.1 * MBPS), Category::High);
    }

    #[test]
    fn mbps_constant() {
        // 1 Mbps = 125000 bytes/sec.
        assert_eq!(MBPS, 125_000.0);
    }

    #[test]
    fn variability_of_series() {
        let steady = vec![100.0, 105.0, 95.0, 102.0, 98.0];
        assert_eq!(Variability::of_series(&steady), Variability::Stable);
        let wild = vec![100.0, 20.0, 250.0, 40.0, 180.0];
        assert_eq!(Variability::of_series(&wild), Variability::Variable);
        // Degenerate inputs default to stable.
        assert_eq!(Variability::of_series(&[7.0]), Variability::Stable);
        assert_eq!(Variability::of_series(&[]), Variability::Stable);
    }

    #[test]
    fn labels() {
        assert_eq!(Category::Low.label(), "Low");
        assert_eq!(Variability::Variable.label(), "variable");
    }
}
