//! `ir-workload` — PlanetLab-like scenarios for the indirect-routing
//! study.
//!
//! * [`roster`] — the paper's node names and domains (Appendix Tables
//!   IV/V), the §4 extras, and the four destination web sites.
//! * [`category`] — §2.2's Low/Medium/High throughput bands and the
//!   stable/variable split used by Table I's filters.
//! * [`scenario`] — builds a calibrated simulated network:
//!   [`scenario::planetlab_study`] (§2.2: 22 clients × 21 relays × 4
//!   servers) and [`scenario::selection_study`] (§4: 3 clients × 35
//!   relays × eBay).
//! * [`schedule`] — the §2.2 (6 min × 100) and §4.2 (30 s × 720)
//!   transfer schedules.
//! * [`calfile`] — `key = value` load/save for [`Calibration`], so
//!   calibration sweeps need no recompile.

pub mod calfile;
pub mod category;
pub mod faults;
pub mod roster;
pub mod scenario;
pub mod schedule;
pub mod stable;

pub use calfile::{from_kv, to_kv};
pub use category::{Category, Variability, MBPS};
pub use faults::overlay_fault_plan;
pub use scenario::{build, planetlab_study, selection_study, Calibration, ClientProfile, Scenario};
pub use schedule::Schedule;
