//! The paper's node roster (Appendix Tables IV and V).
//!
//! Names and domains are reproduced verbatim from the paper. The §4
//! selection study used 35 intermediates but the appendix lists only
//! 21; the 8 extra university sites named in Table III are included,
//! and the remaining 6 are synthesized (marked `synthesized: true`) to
//! reach the paper's 35 — they are statistically indistinguishable
//! members of the pool.

/// A client site: paper row, name, domain, and a one-way latency to the
/// continental US in milliseconds (calibrated from the site's
/// geography; the paper does not publish RTTs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientSite {
    /// Country label used throughout the paper's tables.
    pub name: &'static str,
    /// PlanetLab domain name (Table IV).
    pub domain: &'static str,
    /// One-way latency to the continental US, ms.
    pub us_latency_ms: u64,
}

/// An intermediate (relay) site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelaySite {
    /// University label used in the paper's tables.
    pub name: &'static str,
    /// PlanetLab domain name (Table V) or a synthesized one.
    pub domain: &'static str,
    /// True for the 6 pool-filler sites not named anywhere in the paper.
    pub synthesized: bool,
}

/// A destination web site (§2.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerSite {
    /// Site label.
    pub name: &'static str,
    /// Relative scale of direct-path rates to this site (the paper's
    /// per-site improvement spread, 33–49%, implies the sites differ;
    /// eBay's data set — the paper's focus — sits at the slow end).
    pub rate_factor: f64,
}

/// The 22 international client nodes of Table IV.
pub const CLIENTS: &[ClientSite] = &[
    ClientSite {
        name: "Australia 1",
        domain: "plnode02.cs.mu.oz.au",
        us_latency_ms: 100,
    },
    ClientSite {
        name: "Australia 2",
        domain: "planet-lab-1.csse.monash.edu.au",
        us_latency_ms: 105,
    },
    ClientSite {
        name: "Beirut",
        domain: "planetlab1.aub.edu.lb",
        us_latency_ms: 95,
    },
    ClientSite {
        name: "Berlin",
        domain: "planetlab1.info.ucl.ac.be",
        us_latency_ms: 60,
    },
    ClientSite {
        name: "Brazil",
        domain: "planetlab2.lsd.ufcg.edu.br",
        us_latency_ms: 85,
    },
    ClientSite {
        name: "Canada",
        domain: "planetlab1.enel.ucalgary.ca",
        us_latency_ms: 30,
    },
    ClientSite {
        name: "Denmark",
        domain: "planetlab2.diku.dk",
        us_latency_ms: 62,
    },
    ClientSite {
        name: "Finland",
        domain: "planetlab2.hiit.fi",
        us_latency_ms: 70,
    },
    ClientSite {
        name: "France",
        domain: "planetlab2.eurecom.fr",
        us_latency_ms: 55,
    },
    ClientSite {
        name: "Greece",
        domain: "planetlab1.cslab.ece.ntua.gr",
        us_latency_ms: 75,
    },
    ClientSite {
        name: "Iceland",
        domain: "planetlab1.ru.is",
        us_latency_ms: 50,
    },
    ClientSite {
        name: "India",
        domain: "planetlab1.iiitb.ac.in",
        us_latency_ms: 115,
    },
    ClientSite {
        name: "Israel",
        domain: "planetlab2.bgu.ac.il",
        us_latency_ms: 82,
    },
    ClientSite {
        name: "Italy",
        domain: "planetlab1.polito.it",
        us_latency_ms: 60,
    },
    ClientSite {
        name: "Korea",
        domain: "arari.snu.ac.kr",
        us_latency_ms: 80,
    },
    ClientSite {
        name: "Norway",
        domain: "planetlab1.ifi.uio.no",
        us_latency_ms: 65,
    },
    ClientSite {
        name: "Russia",
        domain: "planet-lab.iki.rssi.ru",
        us_latency_ms: 88,
    },
    ClientSite {
        name: "Singapore",
        domain: "soccf-planet-001.comp.nus.edu.sg",
        us_latency_ms: 108,
    },
    ClientSite {
        name: "Sweden",
        domain: "planetlab1.sics.se",
        us_latency_ms: 66,
    },
    ClientSite {
        name: "Switzerland",
        domain: "planetlab02.ethz.ch",
        us_latency_ms: 58,
    },
    ClientSite {
        name: "Taiwan",
        domain: "ent1.cs.nccu.edu.tw",
        us_latency_ms: 92,
    },
    ClientSite {
        name: "UK",
        domain: "planetlab1.rn.informatics.scitech.susx.ac.uk",
        us_latency_ms: 45,
    },
];

/// The 21 US intermediate nodes of Table V.
pub const INTERMEDIATES: &[RelaySite] = &[
    RelaySite {
        name: "CMU",
        domain: "planetlab-2.cmcl.cs.cmu.edu",
        synthesized: false,
    },
    RelaySite {
        name: "Berkeley",
        domain: "planetlab1.millennium.berkeley.edu",
        synthesized: false,
    },
    RelaySite {
        name: "Caltech",
        domain: "planlab1.cs.caltech.edu",
        synthesized: false,
    },
    RelaySite {
        name: "Columbia",
        domain: "planetlab1.comet.columbia.edu",
        synthesized: false,
    },
    RelaySite {
        name: "Duke",
        domain: "planetlab1.cs.duke.edu",
        synthesized: false,
    },
    RelaySite {
        name: "Georgia Tech",
        domain: "planet.cc.gt.atl.ga.us",
        synthesized: false,
    },
    RelaySite {
        name: "Harvard",
        domain: "lefthand.eecs.harvard.edu",
        synthesized: false,
    },
    RelaySite {
        name: "Michigan",
        domain: "planetlab1.eecs.umich.edu",
        synthesized: false,
    },
    RelaySite {
        name: "MIT",
        domain: "planetlab1.csail.mit.edu",
        synthesized: false,
    },
    RelaySite {
        name: "Notre Dame",
        domain: "planetlab1.cse.nd.edu",
        synthesized: false,
    },
    RelaySite {
        name: "NYU",
        domain: "planet1.scs.cs.nyu.edu",
        synthesized: false,
    },
    RelaySite {
        name: "Princeton",
        domain: "planetlab-1.cs.princeton.edu",
        synthesized: false,
    },
    RelaySite {
        name: "Rice",
        domain: "ricepl-1.cs.rice.edu",
        synthesized: false,
    },
    RelaySite {
        name: "Stanford",
        domain: "planetlab-1.stanford.edu",
        synthesized: false,
    },
    RelaySite {
        name: "Texas",
        domain: "planetlab1.csres.utexas.edu",
        synthesized: false,
    },
    RelaySite {
        name: "UCLA",
        domain: "planetlab2.cs.ucla.edu",
        synthesized: false,
    },
    RelaySite {
        name: "UCSD",
        domain: "planetlab2.ucsd.edu",
        synthesized: false,
    },
    RelaySite {
        name: "UIUC",
        domain: "planetlab1.cs.uiuc.edu",
        synthesized: false,
    },
    RelaySite {
        name: "Upenn",
        domain: "planetlab1.cis.upenn.edu",
        synthesized: false,
    },
    RelaySite {
        name: "Washington",
        domain: "planetlab01.cs.washington.edu",
        synthesized: false,
    },
    RelaySite {
        name: "Wisconsin",
        domain: "planetlab1.cs.wisc.edu",
        synthesized: false,
    },
];

/// The additional intermediates of the §4 selection study: the 8 named
/// in Table III plus 6 synthesized fillers reaching the paper's 35.
pub const EXTRA_INTERMEDIATES: &[RelaySite] = &[
    RelaySite {
        name: "Northwestern",
        domain: "planetlab1.cs.northwestern.edu",
        synthesized: false,
    },
    RelaySite {
        name: "Minnesota",
        domain: "planetlab1.dtc.umn.edu",
        synthesized: false,
    },
    RelaySite {
        name: "DePaul",
        domain: "planetlab1.depaul.edu",
        synthesized: false,
    },
    RelaySite {
        name: "Utah",
        domain: "planetlab1.flux.utah.edu",
        synthesized: false,
    },
    RelaySite {
        name: "Maryland",
        domain: "planetlab1.umd.edu",
        synthesized: false,
    },
    RelaySite {
        name: "Wayne State",
        domain: "planetlab1.cs.wayne.edu",
        synthesized: false,
    },
    RelaySite {
        name: "UCSB",
        domain: "planetlab1.cs.ucsb.edu",
        synthesized: false,
    },
    RelaySite {
        name: "Georgetown",
        domain: "planetlab1.georgetown.edu",
        synthesized: false,
    },
    RelaySite {
        name: "Arizona",
        domain: "planetlab1.cs.arizona.edu",
        synthesized: true,
    },
    RelaySite {
        name: "Purdue",
        domain: "planetlab1.cs.purdue.edu",
        synthesized: true,
    },
    RelaySite {
        name: "Cornell",
        domain: "planetlab1.cs.cornell.edu",
        synthesized: true,
    },
    RelaySite {
        name: "Virginia",
        domain: "planetlab1.cs.virginia.edu",
        synthesized: true,
    },
    RelaySite {
        name: "Colorado",
        domain: "planetlab1.cs.colorado.edu",
        synthesized: true,
    },
    RelaySite {
        name: "Dartmouth",
        domain: "planetlab1.cs.dartmouth.edu",
        synthesized: true,
    },
    RelaySite {
        name: "Ohio State",
        domain: "planetlab1.cse.ohio-state.edu",
        synthesized: true,
    },
];

/// The four destination web sites of §2.2. eBay — the paper's focus
/// data set — is given the slowest direct paths (it shows the largest
/// improvement, 49%); the spread generates the paper's 33–49% per-site
/// range.
pub const SERVERS: &[ServerSite] = &[
    ServerSite {
        name: "eBay",
        rate_factor: 0.85,
    },
    ServerSite {
        name: "Google",
        rate_factor: 1.05,
    },
    ServerSite {
        name: "Microsoft",
        rate_factor: 0.92,
    },
    ServerSite {
        name: "Yahoo",
        rate_factor: 0.98,
    },
];

/// The three §4 clients (chosen by the paper for being Low/Medium
/// throughput): Duke (a US site acting as a client), Italy, Sweden.
pub const SELECTION_CLIENTS: &[ClientSite] = &[
    ClientSite {
        name: "Duke",
        domain: "planetlab1.cs.duke.edu",
        us_latency_ms: 18,
    },
    ClientSite {
        name: "Italy",
        domain: "planetlab1.polito.it",
        us_latency_ms: 60,
    },
    ClientSite {
        name: "Sweden",
        domain: "planetlab1.sics.se",
        us_latency_ms: 66,
    },
];

/// Full 35-relay pool of the §4 study: Table V plus the extras, minus
/// Duke (who plays the client there).
pub fn selection_relays() -> Vec<RelaySite> {
    INTERMEDIATES
        .iter()
        .filter(|r| r.name != "Duke")
        .chain(EXTRA_INTERMEDIATES.iter())
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_sizes_match_paper() {
        assert_eq!(CLIENTS.len(), 22, "Table IV has 22 clients");
        assert_eq!(INTERMEDIATES.len(), 21, "Table V has 21 intermediates");
        assert_eq!(SERVERS.len(), 4);
        assert_eq!(SELECTION_CLIENTS.len(), 3);
        // §4: 38 nodes = 3 clients + 35 intermediates; Duke moves from
        // the Table V pool to the client side, so the pool is 20 + 15.
        assert_eq!(selection_relays().len(), 35);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = CLIENTS.iter().map(|c| c.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), CLIENTS.len());
        let mut rn: Vec<&str> = INTERMEDIATES
            .iter()
            .chain(EXTRA_INTERMEDIATES.iter())
            .map(|r| r.name)
            .collect();
        rn.sort();
        rn.dedup();
        assert_eq!(rn.len(), INTERMEDIATES.len() + EXTRA_INTERMEDIATES.len());
    }

    #[test]
    fn table_iii_relays_present_in_selection_pool() {
        let pool = selection_relays();
        for name in [
            "Texas",
            "Northwestern",
            "Wisconsin",
            "Minnesota",
            "DePaul",
            "Georgia Tech",
            "Rice",
            "Utah",
            "Upenn",
            "Maryland",
            "Wayne State",
            "UCSD",
            "Caltech",
            "UCSB",
            "Washington",
            "UIUC",
            "Berkeley",
            "Georgetown",
            "Michigan",
            "Princeton",
            "UCLA",
            "MIT",
        ] {
            assert!(pool.iter().any(|r| r.name == name), "{name} missing");
        }
        assert!(!pool.iter().any(|r| r.name == "Duke"), "Duke is the client");
    }

    #[test]
    fn synthesized_fillers_are_marked() {
        let synth: Vec<&RelaySite> = EXTRA_INTERMEDIATES
            .iter()
            .filter(|r| r.synthesized)
            .collect();
        assert_eq!(synth.len(), 7);
        assert!(INTERMEDIATES.iter().all(|r| !r.synthesized));
    }
}
