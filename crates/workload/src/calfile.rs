//! Calibration file I/O — a minimal `key = value` format.
//!
//! Lets users sweep calibrations from the command line without adding a
//! serialization-format dependency: every [`Calibration`] field is a
//! line, arrays are comma-separated, `#` starts a comment.

use crate::scenario::Calibration;

/// Serializes a calibration to the `key = value` format.
pub fn to_kv(cal: &Calibration) -> String {
    let arr = |a: &[f64; 3]| format!("{},{},{}", a[0], a[1], a[2]);
    let pair = |p: (f64, f64)| format!("{},{}", p.0, p.1);
    let mut s = String::from("# indirect-routing calibration (see DESIGN.md §5)\n");
    let mut kv = |k: &str, v: String| {
        s.push_str(k);
        s.push_str(" = ");
        s.push_str(&v);
        s.push('\n');
    };
    kv("low_mbps", pair(cal.low_mbps));
    kv("med_mbps", pair(cal.med_mbps));
    kv("high_mbps", pair(cal.high_mbps));
    kv("frac_medium", cal.frac_medium.to_string());
    kv("frac_high", cal.frac_high.to_string());
    kv("var_frac_low_med", cal.var_frac_low_med.to_string());
    kv("var_frac_high", cal.var_frac_high.to_string());
    kv("stable_levels", arr(&cal.stable_levels));
    kv("variable_levels", arr(&cal.variable_levels));
    kv("high_variable_levels", arr(&cal.high_variable_levels));
    kv("stable_hold_secs", arr(&cal.stable_hold_secs));
    kv("variable_hold_secs", arr(&cal.variable_hold_secs));
    kv("stable_noise", cal.stable_noise.to_string());
    kv("variable_noise", cal.variable_noise.to_string());
    kv("overlay_median_mbps", cal.overlay_median_mbps.to_string());
    kv(
        "access_headroom_median",
        cal.access_headroom_median.to_string(),
    );
    kv(
        "access_headroom_sigma",
        cal.access_headroom_sigma.to_string(),
    );
    kv("relay_quality_sigma", cal.relay_quality_sigma.to_string());
    kv("pair_sigma", cal.pair_sigma.to_string());
    kv("overlay_phi", cal.overlay_phi.to_string());
    kv("overlay_sigma", cal.overlay_sigma.to_string());
    kv("overlay_tick_secs", cal.overlay_tick_secs.to_string());
    kv("jump_arrival_secs", cal.jump_arrival_secs.to_string());
    kv("jump_duration_secs", cal.jump_duration_secs.to_string());
    kv("jump_factor", cal.jump_factor.to_string());
    kv("relay_server_mbps", pair(cal.relay_server_mbps));
    s
}

/// Parse error: which line and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses the `key = value` format. Unknown keys error (typos must not
/// silently no-op); missing keys keep their default.
pub fn from_kv(input: &str) -> Result<Calibration, ParseError> {
    let mut cal = Calibration::default();
    for (ln, raw) in input.lines().enumerate() {
        let line_no = ln + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(ParseError {
                line: line_no,
                message: format!("expected `key = value`, got {line:?}"),
            });
        };
        let key = key.trim();
        let value = value.trim();
        let err = |message: String| ParseError {
            line: line_no,
            message,
        };
        let f = |v: &str| -> Result<f64, ParseError> {
            v.trim()
                .parse()
                .map_err(|_| err(format!("bad number {v:?}")))
        };
        let pair = |v: &str| -> Result<(f64, f64), ParseError> {
            let parts: Vec<&str> = v.split(',').collect();
            if parts.len() != 2 {
                return Err(err(format!("expected two numbers, got {v:?}")));
            }
            Ok((f(parts[0])?, f(parts[1])?))
        };
        let arr = |v: &str| -> Result<[f64; 3], ParseError> {
            let parts: Vec<&str> = v.split(',').collect();
            if parts.len() != 3 {
                return Err(err(format!("expected three numbers, got {v:?}")));
            }
            Ok([f(parts[0])?, f(parts[1])?, f(parts[2])?])
        };
        match key {
            "low_mbps" => cal.low_mbps = pair(value)?,
            "med_mbps" => cal.med_mbps = pair(value)?,
            "high_mbps" => cal.high_mbps = pair(value)?,
            "frac_medium" => cal.frac_medium = f(value)?,
            "frac_high" => cal.frac_high = f(value)?,
            "var_frac_low_med" => cal.var_frac_low_med = f(value)?,
            "var_frac_high" => cal.var_frac_high = f(value)?,
            "stable_levels" => cal.stable_levels = arr(value)?,
            "variable_levels" => cal.variable_levels = arr(value)?,
            "high_variable_levels" => cal.high_variable_levels = arr(value)?,
            "stable_hold_secs" => cal.stable_hold_secs = arr(value)?,
            "variable_hold_secs" => cal.variable_hold_secs = arr(value)?,
            "stable_noise" => cal.stable_noise = f(value)?,
            "variable_noise" => cal.variable_noise = f(value)?,
            "overlay_median_mbps" => cal.overlay_median_mbps = f(value)?,
            "access_headroom_median" => cal.access_headroom_median = f(value)?,
            "access_headroom_sigma" => cal.access_headroom_sigma = f(value)?,
            "relay_quality_sigma" => cal.relay_quality_sigma = f(value)?,
            "pair_sigma" => cal.pair_sigma = f(value)?,
            "overlay_phi" => cal.overlay_phi = f(value)?,
            "overlay_sigma" => cal.overlay_sigma = f(value)?,
            "overlay_tick_secs" => cal.overlay_tick_secs = f(value)?,
            "jump_arrival_secs" => cal.jump_arrival_secs = f(value)?,
            "jump_duration_secs" => cal.jump_duration_secs = f(value)?,
            "jump_factor" => cal.jump_factor = f(value)?,
            "relay_server_mbps" => cal.relay_server_mbps = pair(value)?,
            other => {
                return Err(err(format!("unknown key {other:?}")));
            }
        }
    }
    Ok(cal)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_is_identity() {
        let cal = Calibration::default();
        let text = to_kv(&cal);
        let back = from_kv(&text).unwrap();
        assert_eq!(cal, back);
    }

    #[test]
    fn partial_file_keeps_defaults() {
        let cal = from_kv("overlay_median_mbps = 2.5\n# comment\n").unwrap();
        assert_eq!(cal.overlay_median_mbps, 2.5);
        assert_eq!(cal.pair_sigma, Calibration::default().pair_sigma);
    }

    #[test]
    fn arrays_and_pairs_parse() {
        let cal = from_kv("stable_levels = 0.5, 1.0, 1.5\nlow_mbps = 0.2,0.9\n").unwrap();
        assert_eq!(cal.stable_levels, [0.5, 1.0, 1.5]);
        assert_eq!(cal.low_mbps, (0.2, 0.9));
    }

    #[test]
    fn unknown_key_errors_with_line() {
        let e = from_kv("nope = 1\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("unknown key"));
    }

    #[test]
    fn bad_number_errors() {
        let e = from_kv("\n\nfrac_high = banana\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("bad number"));
    }

    #[test]
    fn malformed_line_errors() {
        let e = from_kv("just words\n").unwrap_err();
        assert!(e.message.contains("key = value"));
    }

    #[test]
    fn comments_and_inline_comments_ignored() {
        let cal = from_kv("# header\njump_factor = 0.4 # drop to 40%\n").unwrap();
        assert_eq!(cal.jump_factor, 0.4);
    }
}
