//! [`StableHash`] impls for workload parameter types.
//!
//! These encodings key the on-disk study cache (`ir-artifact`): they
//! must stay **pinned**. Each impl destructures its type exhaustively,
//! so adding a field is a compile error here — the fix is to extend the
//! encoding *and* bump the consuming artefact's code-version salt so
//! stale cache entries are retired rather than wrongly reused.

use crate::roster::{ClientSite, RelaySite, ServerSite};
use crate::scenario::Calibration;
use crate::schedule::Schedule;
use ir_artifact::{StableHash, StableHasher};

impl StableHash for Calibration {
    fn stable_hash(&self, h: &mut StableHasher) {
        let Calibration {
            low_mbps,
            med_mbps,
            high_mbps,
            frac_medium,
            frac_high,
            var_frac_low_med,
            var_frac_high,
            stable_levels,
            variable_levels,
            high_variable_levels,
            stable_hold_secs,
            variable_hold_secs,
            stable_noise,
            variable_noise,
            overlay_median_mbps,
            access_headroom_median,
            access_headroom_sigma,
            relay_quality_sigma,
            pair_sigma,
            overlay_phi,
            overlay_sigma,
            overlay_tick_secs,
            jump_arrival_secs,
            jump_duration_secs,
            jump_factor,
            relay_server_mbps,
        } = *self;
        low_mbps.stable_hash(h);
        med_mbps.stable_hash(h);
        high_mbps.stable_hash(h);
        frac_medium.stable_hash(h);
        frac_high.stable_hash(h);
        var_frac_low_med.stable_hash(h);
        var_frac_high.stable_hash(h);
        stable_levels.stable_hash(h);
        variable_levels.stable_hash(h);
        high_variable_levels.stable_hash(h);
        stable_hold_secs.stable_hash(h);
        variable_hold_secs.stable_hash(h);
        stable_noise.stable_hash(h);
        variable_noise.stable_hash(h);
        overlay_median_mbps.stable_hash(h);
        access_headroom_median.stable_hash(h);
        access_headroom_sigma.stable_hash(h);
        relay_quality_sigma.stable_hash(h);
        pair_sigma.stable_hash(h);
        overlay_phi.stable_hash(h);
        overlay_sigma.stable_hash(h);
        overlay_tick_secs.stable_hash(h);
        jump_arrival_secs.stable_hash(h);
        jump_duration_secs.stable_hash(h);
        jump_factor.stable_hash(h);
        relay_server_mbps.stable_hash(h);
    }
}

impl StableHash for Schedule {
    fn stable_hash(&self, h: &mut StableHasher) {
        let Schedule { period, count } = *self;
        period.stable_hash(h);
        count.stable_hash(h);
    }
}

impl StableHash for ClientSite {
    fn stable_hash(&self, h: &mut StableHasher) {
        let ClientSite {
            name,
            domain,
            us_latency_ms,
        } = *self;
        name.stable_hash(h);
        domain.stable_hash(h);
        us_latency_ms.stable_hash(h);
    }
}

impl StableHash for RelaySite {
    fn stable_hash(&self, h: &mut StableHasher) {
        let RelaySite {
            name,
            domain,
            synthesized,
        } = *self;
        name.stable_hash(h);
        domain.stable_hash(h);
        synthesized.stable_hash(h);
    }
}

impl StableHash for ServerSite {
    fn stable_hash(&self, h: &mut StableHasher) {
        let ServerSite { name, rate_factor } = *self;
        name.stable_hash(h);
        rate_factor.stable_hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roster::{CLIENTS, INTERMEDIATES};
    use ir_artifact::fingerprint_of;

    #[test]
    fn calibration_fingerprint_tracks_field_changes() {
        let base = Calibration::default();
        assert_eq!(
            fingerprint_of(&base),
            fingerprint_of(&Calibration::default())
        );
        let mut tweaked = base;
        tweaked.overlay_median_mbps += 0.001;
        assert_ne!(fingerprint_of(&base), fingerprint_of(&tweaked));
    }

    #[test]
    fn schedules_and_rosters_disambiguate() {
        let a = Schedule::measurement_study();
        let b = Schedule::measurement_study().spread(8);
        assert_ne!(fingerprint_of(&a), fingerprint_of(&b));
        assert_ne!(fingerprint_of(&CLIENTS[..4]), fingerprint_of(&CLIENTS[..5]));
        assert_ne!(
            fingerprint_of(&CLIENTS[0]),
            fingerprint_of(&INTERMEDIATES[0])
        );
    }
}
