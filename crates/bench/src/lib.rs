//! `ir-bench` — shared fixtures for the Criterion benchmark harness.
//!
//! The benches live in `benches/`:
//!
//! * `figures` — one group per paper artefact (Figs 1–6, Tables I–III):
//!   times the regeneration of each table/figure from study data, plus
//!   a small end-to-end study run.
//! * `micro` — substrate microbenchmarks: event queue, max–min fair
//!   share, TCP transfer integration, HTTP codec, range parsing,
//!   histogram/statistics, token bucket.
//! * `ablations` — design-choice sweeps (probe size x, selection
//!   policy, predictor); each prints its quality table once to stderr
//!   and benches the runtime of the reference configuration.

use ir_core::SessionConfig;
use ir_experiments::runner::{
    run_measurement_study, run_selection_study, MeasurementData, SelectionData,
};
use ir_workload::{build, roster, Calibration, Scenario, Schedule};

/// A small but statistically meaningful measurement scenario: 6 clients
/// × 6 relays × eBay.
pub fn bench_scenario() -> Scenario {
    build(
        2007,
        &roster::CLIENTS[..6],
        &roster::INTERMEDIATES[..6],
        &roster::SERVERS[..1],
        Calibration::default(),
        false,
    )
}

/// Measurement-study data for the artefact benches (computed once,
/// outside timing loops).
pub fn bench_measurement_data() -> MeasurementData {
    run_measurement_study(
        &bench_scenario(),
        0,
        Schedule::measurement_study().spread(12),
        SessionConfig::paper_defaults(),
    )
}

/// Selection-study data for Fig 6 / Table III benches.
pub fn bench_selection_data() -> SelectionData {
    let sc = ir_workload::selection_study(2007);
    run_selection_study(
        &sc,
        &[1, 5, 10],
        Schedule::selection_study().spread(40),
        SessionConfig::paper_defaults(),
        2007,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let m = bench_measurement_data();
        assert!(m.all_records().count() > 0);
        let s = bench_selection_data();
        assert!(!s.runs.is_empty());
    }
}
