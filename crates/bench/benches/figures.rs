//! One Criterion group per paper artefact: how long regenerating each
//! table/figure takes from study data, plus a small end-to-end study.
//!
//! The scientific content (paper-vs-measured values) is produced by the
//! `experiments` binary and asserted by `tests/paper_shapes.rs`; these
//! benches track the *cost* of the analysis pipeline and of the
//! simulation itself.

use criterion::{criterion_group, criterion_main, Criterion};
use ir_bench::{bench_measurement_data, bench_scenario, bench_selection_data};
use ir_core::SessionConfig;
use ir_experiments::{fig1, fig2, fig3, fig4, fig5, fig6, runner, table1, table2, table3};
use ir_workload::Schedule;
use std::hint::black_box;

fn artefacts(c: &mut Criterion) {
    let m = bench_measurement_data();
    let s = bench_selection_data();

    c.bench_function("fig1_improvement_histogram", |b| {
        b.iter(|| black_box(fig1::report(black_box(&m))))
    });
    c.bench_function("fig2_per_client_histograms", |b| {
        b.iter(|| black_box(fig2::report(black_box(&m))))
    });
    c.bench_function("table1_penalty_stats", |b| {
        b.iter(|| black_box(table1::report(black_box(&m))))
    });
    c.bench_function("table2_top_intermediates", |b| {
        b.iter(|| black_box(table2::report(black_box(&m))))
    });
    c.bench_function("fig3_improvement_vs_throughput", |b| {
        b.iter(|| black_box(fig3::report(black_box(&m))))
    });
    c.bench_function("fig4_indirect_over_time", |b| {
        b.iter(|| black_box(fig4::report(black_box(&m))))
    });
    c.bench_function("fig5_node_utilization", |b| {
        b.iter(|| black_box(fig5::report(black_box(&m))))
    });
    c.bench_function("fig6_random_set_size", |b| {
        b.iter(|| black_box(fig6::report(black_box(&s))))
    });
    c.bench_function("table3_utilization_vs_improvement", |b| {
        b.iter(|| black_box(table3::report(black_box(&s))))
    });
}

fn studies(c: &mut Criterion) {
    // End-to-end: scenario construction + a short measurement study.
    let mut g = c.benchmark_group("study");
    g.sample_size(10);
    g.bench_function("measurement_6x6x4_transfers", |b| {
        let scenario = bench_scenario();
        b.iter(|| {
            black_box(runner::run_measurement_study(
                black_box(&scenario),
                0,
                Schedule::measurement_study().spread(4),
                SessionConfig::paper_defaults(),
            ))
        })
    });
    g.bench_function("scenario_construction_planetlab", |b| {
        b.iter(|| black_box(ir_workload::planetlab_study(black_box(2007))))
    });
    g.finish();
}

criterion_group!(benches, artefacts, studies);
criterion_main!(benches);
