//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **probe size x** — the paper fixes x = 100 KB ("produces good
//!   estimates"); the sweep shows the trade-off: tiny probes mispredict
//!   (slow-start bias), huge probes waste transfer time.
//! * **selection policy** — uniform random set vs the §6
//!   utilization-weighted extension vs bandit baselines.
//! * **predictor** — the paper's first-portion predictor vs an EWMA
//!   blend.
//!
//! Each ablation prints its quality table to stderr once (the numbers
//! are the point), then benches the runtime of the reference
//! configuration so regressions in simulation cost are visible.

use criterion::{criterion_group, criterion_main, Criterion};
use ir_core::{
    EpsilonGreedy, EwmaBlend, FirstPortion, Predictor, RandomSet, SelectionPolicy, SessionConfig,
    StaticSingle, Ucb1, UtilizationWeighted,
};
use ir_experiments::runner::run_task_with;
use ir_stats::Summary;
use ir_workload::{selection_study, Scenario, Schedule};
use std::hint::black_box;
use std::sync::OnceLock;

fn scenario() -> &'static Scenario {
    static SC: OnceLock<Scenario> = OnceLock::new();
    SC.get_or_init(|| selection_study(2007))
}

fn quality(records: &[ir_core::TransferRecord]) -> (f64, f64) {
    let imps: Vec<f64> = records
        .iter()
        .map(|r| r.improvement_pct())
        .filter(|v| v.is_finite())
        .collect();
    let s = Summary::of(&imps).expect("non-empty");
    let pen = records
        .iter()
        .filter(|r| r.chose_indirect() && r.is_penalty())
        .count() as f64
        / records.len() as f64
        * 100.0;
    (s.mean, pen)
}

fn ablation_probe_size(c: &mut Criterion) {
    let sc = scenario();
    let schedule = Schedule::selection_study().spread(60);
    eprintln!(
        "\n=== ablation: probe size x (client {}, k=5) ===",
        sc.name(sc.clients[0])
    );
    eprintln!(
        "{:>10} {:>12} {:>12}",
        "x (KB)", "mean impr %", "penalties %"
    );
    for x_kb in [10u64, 25, 50, 100, 200, 400] {
        let mut session = SessionConfig::paper_defaults();
        session.probe_bytes = x_kb * 1024;
        let records = run_task_with(
            sc,
            sc.clients[0],
            sc.servers[0],
            &sc.relays,
            Box::new(RandomSet::new(5, 7)),
            schedule,
            &session,
        );
        let (mean, pen) = quality(&records);
        eprintln!("{x_kb:>10} {mean:>+12.1} {pen:>12.1}");
    }

    c.bench_function("ablation_probe_size_reference_x100KB", |b| {
        let session = SessionConfig::paper_defaults();
        let small = Schedule::selection_study().spread(5);
        b.iter(|| {
            black_box(run_task_with(
                sc,
                sc.clients[0],
                sc.servers[0],
                &sc.relays,
                Box::new(RandomSet::new(5, 7)),
                small,
                &session,
            ))
        })
    });
}

fn ablation_policies(c: &mut Criterion) {
    let sc = scenario();
    let schedule = Schedule::selection_study().spread(120);
    let session = SessionConfig::paper_defaults();
    eprintln!(
        "\n=== ablation: selection policy (client {}) ===",
        sc.name(sc.clients[0])
    );
    eprintln!(
        "{:>30} {:>12} {:>12}",
        "policy", "mean impr %", "penalties %"
    );
    let policies: Vec<(&str, Box<dyn SelectionPolicy>)> = vec![
        (
            "static-single (first relay)",
            Box::new(StaticSingle(sc.relays[0])),
        ),
        ("uniform random set k=5", Box::new(RandomSet::new(5, 7))),
        (
            "utilization-weighted k=5",
            Box::new(UtilizationWeighted::new(5, 7)),
        ),
        ("epsilon-greedy 0.1", Box::new(EpsilonGreedy::new(0.1, 7))),
        ("ucb1", Box::new(Ucb1::new())),
    ];
    for (name, policy) in policies {
        let records = run_task_with(
            sc,
            sc.clients[0],
            sc.servers[0],
            &sc.relays,
            policy,
            schedule,
            &session,
        );
        let (mean, pen) = quality(&records);
        eprintln!("{name:>30} {mean:>+12.1} {pen:>12.1}");
    }

    c.bench_function("ablation_policy_reference_random_set", |b| {
        let small = Schedule::selection_study().spread(5);
        b.iter(|| {
            black_box(run_task_with(
                sc,
                sc.clients[0],
                sc.servers[0],
                &sc.relays,
                Box::new(RandomSet::new(5, 7)),
                small,
                &session,
            ))
        })
    });
}

fn ablation_predictors(c: &mut Criterion) {
    // Pure prediction quality, decoupled from probe overhead: at each
    // schedule instant, what a 100 KB probe would measure on each path
    // (oracle on an isolated replica) feeds the predictor; the chosen
    // path's true whole-file rate is compared with the best path's.
    use ir_core::{PathSpec, SelectCtx, SimTransport, Transport};
    use ir_simnet::time::{SimDuration, SimTime};

    let sc = scenario();
    let schedule = Schedule::selection_study().spread(60);
    let probe_bytes = 100 * 1024;
    let file_bytes = 2 * 1024 * 1024;
    let horizon = SimDuration::from_secs(1200);

    eprintln!("\n=== ablation: predictor quality (k=5, oracle-scored) ===");
    eprintln!(
        "{:>20} {:>14} {:>14}",
        "predictor", "optimal pick %", "efficiency %"
    );
    let predictors: Vec<(&str, Box<dyn Predictor>)> = vec![
        ("first-portion", Box::new(FirstPortion)),
        ("ewma-blend 0.5/0.3", Box::new(EwmaBlend::new(0.5, 0.3))),
        ("ewma-blend 0.2/0.3", Box::new(EwmaBlend::new(0.2, 0.3))),
    ];
    for (name, mut predictor) in predictors {
        let mut transport = SimTransport::new(sc.network.clone());
        let mut policy = RandomSet::new(5, 7);
        let client = sc.clients[0];
        let server = sc.servers[0];
        let mut optimal_picks = 0usize;
        let mut total = 0usize;
        let mut efficiency_sum = 0.0;
        for (i, at) in schedule.instants(SimTime::ZERO).enumerate() {
            let target = at.max(transport.now());
            transport.network_mut().advance_until(target);
            let ctx = SelectCtx {
                client,
                server,
                full_set: &sc.relays,
                transfer_index: i as u64,
            };
            let candidates = policy.candidates(&ctx);
            let paths: Vec<PathSpec> = std::iter::once(PathSpec::direct(client, server))
                .chain(
                    candidates
                        .iter()
                        .map(|&v| PathSpec::indirect(client, server, v)),
                )
                .collect();
            // What a probe would measure, and the ground truth.
            let probe_rates: Vec<Option<f64>> = paths
                .iter()
                .map(|p| transport.oracle_throughput(p, probe_bytes, horizon))
                .collect();
            let true_rates: Vec<Option<f64>> = paths
                .iter()
                .map(|p| transport.oracle_throughput(p, file_bytes, horizon))
                .collect();
            let chosen = paths
                .iter()
                .zip(&probe_rates)
                .enumerate()
                .filter_map(|(k, (p, r))| r.map(|r| (k, predictor.predict(p, r))))
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .map(|(k, _)| k);
            let best = true_rates
                .iter()
                .enumerate()
                .filter_map(|(k, r)| r.map(|r| (k, r)))
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            if let (Some(k), Some((kb, rb))) = (chosen, best) {
                total += 1;
                if k == kb {
                    optimal_picks += 1;
                }
                if let Some(rc) = true_rates[k] {
                    efficiency_sum += rc / rb;
                    predictor.observe(&paths[k], rc);
                }
            }
        }
        eprintln!(
            "{name:>20} {:>14.1} {:>14.1}",
            optimal_picks as f64 / total.max(1) as f64 * 100.0,
            efficiency_sum / total.max(1) as f64 * 100.0
        );
    }

    c.bench_function("ablation_predictor_reference_first_portion", |b| {
        let session = SessionConfig::paper_defaults();
        let small = Schedule::selection_study().spread(5);
        b.iter(|| {
            black_box(run_task_with(
                sc,
                sc.clients[0],
                sc.servers[0],
                &sc.relays,
                Box::new(RandomSet::new(5, 7)),
                small,
                &session,
            ))
        })
    });
}

fn ablation_file_size(c: &mut Criterion) {
    // The paper requires n >= 2 MB "to ensure long-lived TCP
    // transfers". Sweeping n shows why: for small files the probe
    // overhead (x/n) eats the gains; as n grows the improvement
    // converges to the path-rate ratio.
    let sc = scenario();
    let schedule = Schedule::selection_study().spread(60);
    eprintln!(
        "\n=== ablation: file size n (client {}, k=5, x=100KB) ===",
        sc.name(sc.clients[0])
    );
    eprintln!(
        "{:>10} {:>12} {:>12}",
        "n (MB)", "mean impr %", "penalties %"
    );
    for n_mb in [0.25f64, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let mut session = SessionConfig::paper_defaults();
        session.file_bytes = (n_mb * 1024.0 * 1024.0) as u64;
        let records = run_task_with(
            sc,
            sc.clients[0],
            sc.servers[0],
            &sc.relays,
            Box::new(RandomSet::new(5, 7)),
            schedule,
            &session,
        );
        let (mean, pen) = quality(&records);
        eprintln!("{n_mb:>10} {mean:>+12.1} {pen:>12.1}");
    }

    c.bench_function("ablation_file_size_reference_2MB", |b| {
        let session = SessionConfig::paper_defaults();
        let small = Schedule::selection_study().spread(5);
        b.iter(|| {
            black_box(run_task_with(
                sc,
                sc.clients[0],
                sc.servers[0],
                &sc.relays,
                Box::new(RandomSet::new(5, 7)),
                small,
                &session,
            ))
        })
    });
}

criterion_group!(
    benches,
    ablation_probe_size,
    ablation_policies,
    ablation_predictors,
    ablation_file_size
);
criterion_main!(benches);
