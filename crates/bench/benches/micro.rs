//! Substrate microbenchmarks: the hot paths under the experiment
//! harness.

use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, Criterion};
use ir_http::{encode_request, parse_request, ByteRange, Request};
use ir_simnet::bandwidth::{BandwidthProcess, RegimeSwitchingProcess};
use ir_simnet::events::EventQueue;
use ir_simnet::fairshare::{max_min_rates, reference_rates, AllocFlow};
use ir_simnet::prelude::*;
use ir_stats::{mann_kendall, Histogram, Summary};
use ir_tcp::{transfer_time, TcpConfig, TcpRateCap};
use std::hint::black_box;

fn event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                // Scatter times deterministically.
                q.push(SimTime::from_micros((i * 7919) % 65_536), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum += v;
            }
            black_box(sum)
        })
    });
}

fn fairshare(c: &mut Criterion) {
    // 32 flows over 16 links, random-ish sparse incidence.
    let caps: Vec<f64> = (0..16).map(|i| 1e5 + (i as f64) * 3e4).collect();
    let flows: Vec<AllocFlow> = (0..32)
        .map(|i| AllocFlow {
            links: vec![i % 16, (i * 7 + 3) % 16],
            cap: if i % 5 == 0 { 5e4 } else { f64::INFINITY },
        })
        .collect();
    c.bench_function("max_min_rates_32f_16l", |b| {
        b.iter(|| black_box(max_min_rates(black_box(&caps), black_box(&flows))))
    });
    // The naive oracle the differential engine suite compares against:
    // benchmarked so the cost gap to the production solver stays visible.
    c.bench_function("reference_rates_32f_16l", |b| {
        b.iter(|| black_box(reference_rates(black_box(&caps), black_box(&flows))))
    });
}

fn flow_engine(c: &mut Criterion) {
    c.bench_function("engine_probe_race_2MB", |b| {
        let mut topo = Topology::new();
        let cl = topo.add_node("c", NodeKind::Client);
        let v = topo.add_node("v", NodeKind::Intermediate);
        let s = topo.add_node("s", NodeKind::Server);
        let l0 = topo.add_link_shared(cl, s, SimDuration::from_millis(90), Sharing::PerFlow);
        let l1 = topo.add_link_shared(cl, v, SimDuration::from_millis(85), Sharing::PerFlow);
        let l2 = topo.add_link_shared(v, s, SimDuration::from_millis(10), Sharing::PerFlow);
        let direct = topo.route(&[cl, s]).unwrap();
        let indirect = topo.route(&[cl, v, s]).unwrap();
        let mut base = Network::new(topo, 1.0);
        base.set_link_process(
            l0,
            Box::new(RegimeSwitchingProcess::new(
                vec![8e4, 1.4e5],
                SimDuration::from_secs(120),
                0.1,
                5,
            )),
        );
        base.set_link_process(l1, Box::new(ConstantProcess::new(2e5)));
        base.set_link_process(l2, Box::new(ConstantProcess::new(1e7)));
        let cfg = TcpConfig::for_rtt(SimDuration::from_millis(190)).with_loss(0.0);
        b.iter(|| {
            let mut net = base.clone();
            let a = net.start_flow(direct.clone(), 102_400, Box::new(TcpRateCap::new(cfg)));
            let bflow = net.start_flow(indirect.clone(), 102_400, Box::new(TcpRateCap::new(cfg)));
            let win = net
                .run_until_first_of(&[a, bflow], SimTime::from_secs(600))
                .unwrap();
            let rem = net.start_flow(
                if win.id == a {
                    direct.clone()
                } else {
                    indirect.clone()
                },
                2_000_000,
                Box::new(TcpRateCap::new(cfg)),
            );
            black_box(net.run_flow(rem, SimTime::from_secs(6000)))
        })
    });
}

fn tcp_model(c: &mut Criterion) {
    let cfg = TcpConfig::for_rtt(SimDuration::from_millis(120)).with_loss(0.005);
    c.bench_function("tcp_transfer_time_2MB", |b| {
        b.iter(|| {
            let mut p = ConstantProcess::new(2e5);
            black_box(transfer_time(
                2_000_000,
                SimTime::ZERO,
                cfg,
                &mut p,
                SimDuration::from_secs(600),
            ))
        })
    });
}

fn bandwidth_process(c: &mut Criterion) {
    c.bench_function("regime_process_materialise_10h", |b| {
        b.iter(|| {
            let mut p = RegimeSwitchingProcess::new(
                vec![5e4, 1e5, 2e5],
                SimDuration::from_secs(300),
                0.2,
                black_box(11),
            );
            black_box(p.rate_at(SimTime::from_secs(36_000)))
        })
    });
}

fn http_codec(c: &mut Criterion) {
    let req = Request::get("http://origin:8080/big/file.bin")
        .with_header("Host", "origin:8080")
        .with_header("Range", ByteRange::first(102_400).to_string())
        .with_header("User-Agent", "ir-client/0.1");
    let mut encoded = BytesMut::new();
    encode_request(&req, &mut encoded);
    c.bench_function("http_encode_request", |b| {
        b.iter(|| {
            let mut buf = BytesMut::with_capacity(256);
            encode_request(black_box(&req), &mut buf);
            black_box(buf)
        })
    });
    c.bench_function("http_parse_request", |b| {
        b.iter(|| black_box(parse_request(black_box(&encoded))))
    });
    c.bench_function("range_parse", |b| {
        b.iter(|| black_box(ByteRange::parse(black_box("bytes=102400-1048575"))))
    });
}

fn statistics(c: &mut Criterion) {
    let data: Vec<f64> = (0..10_000)
        .map(|i| ((i as f64) * 0.7).sin() * 50.0 + 49.0)
        .collect();
    c.bench_function("summary_10k", |b| {
        b.iter(|| black_box(Summary::of(black_box(&data))))
    });
    c.bench_function("histogram_10k", |b| {
        b.iter(|| black_box(Histogram::of(-100.0, 200.0, 30, black_box(&data))))
    });
    let series: Vec<f64> = data.iter().take(500).copied().collect();
    c.bench_function("mann_kendall_500", |b| {
        b.iter(|| black_box(mann_kendall(black_box(&series))))
    });
}

fn token_bucket(c: &mut Criterion) {
    use ir_relay::{RateSchedule, TokenBucket};
    use std::time::{Duration, Instant};
    c.bench_function("token_bucket_take", |b| {
        let mut bucket = TokenBucket::new(RateSchedule::constant(1e9), 1e6);
        let t0 = Instant::now();
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            black_box(bucket.take_at(1000, t0 + Duration::from_micros(k)))
        })
    });
}

criterion_group!(
    benches,
    event_queue,
    fairshare,
    flow_engine,
    tcp_model,
    bandwidth_process,
    http_codec,
    statistics,
    token_bucket
);
criterion_main!(benches);
