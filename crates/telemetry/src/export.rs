//! Exporters: Chrome `trace_event` JSON (loadable in `chrome://tracing`
//! or [Perfetto](https://ui.perfetto.dev)), a flat JSON event dump, and
//! a flat CSV event dump.
//!
//! JSON is emitted by hand — the tree has no serde runtime — so every
//! string goes through [`json_string`] and every float through
//! [`json_f64`] (non-finite values become `null`, which strict parsers
//! require).

use crate::trace::{Attr, Event};

/// Escapes and quotes `s` as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a float as a JSON value (`null` for NaN/infinity).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // `{v}` prints integers without a dot, which is still valid
        // JSON (a number), so no special casing needed.
        format!("{v}")
    } else {
        "null".into()
    }
}

fn json_attr(a: &Attr) -> String {
    match a {
        Attr::U64(v) => format!("{v}"),
        Attr::F64(v) => json_f64(*v),
        Attr::Str(v) => json_string(v),
    }
}

fn json_args(event: &Event) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in event.attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(k));
        out.push(':');
        out.push_str(&json_attr(v));
    }
    out.push('}');
    out
}

/// Renders events as a Chrome `trace_event` JSON document (the
/// "JSON Array Format"). Events are sorted by timestamp so `ts` is
/// monotonically non-decreasing, which keeps strict viewers happy.
/// Span events become `"ph":"X"` (complete) entries; instant events
/// become `"ph":"i"` with global scope. The category distinguishes the
/// emitting layer; the correlation id is exposed as the `tid` so
/// related events share a track.
pub fn chrome_trace(events: &[Event]) -> String {
    let mut sorted: Vec<&Event> = events.iter().collect();
    sorted.sort_by_key(|e| e.ts_us);
    let mut out = String::from("[");
    for (i, e) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        out.push_str(&json_string(e.kind.name()));
        out.push_str(",\"cat\":");
        out.push_str(&json_string(e.kind.category()));
        match e.dur_us {
            Some(dur) => {
                out.push_str(&format!(",\"ph\":\"X\",\"ts\":{},\"dur\":{}", e.ts_us, dur));
            }
            None => {
                out.push_str(&format!(",\"ph\":\"i\",\"s\":\"g\",\"ts\":{}", e.ts_us));
            }
        }
        out.push_str(&format!(",\"pid\":1,\"tid\":{},\"args\":", e.id));
        out.push_str(&json_args(e));
        out.push('}');
    }
    out.push(']');
    out
}

/// Renders events as a flat JSON array (one object per event, in the
/// given order).
pub fn events_json(events: &[Event]) -> String {
    let mut out = String::from("[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"ts_us\":{},\"kind\":{},\"cat\":{},\"id\":{}",
            e.ts_us,
            json_string(e.kind.name()),
            json_string(e.kind.category()),
            e.id
        ));
        if let Some(dur) = e.dur_us {
            out.push_str(&format!(",\"dur_us\":{dur}"));
        }
        out.push_str(",\"args\":");
        out.push_str(&json_args(e));
        out.push('}');
    }
    out.push(']');
    out
}

/// Renders events as CSV: `ts_us,kind,cat,id,dur_us,attrs` where attrs
/// is a `k=v;k=v` list (values with `,`/`;`/`"` are quote-escaped by
/// doubling quotes per RFC 4180).
pub fn events_csv(events: &[Event]) -> String {
    let mut out = String::from("ts_us,kind,cat,id,dur_us,attrs\n");
    for e in events {
        let attrs: Vec<String> = e.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
        let attrs = attrs.join(";");
        let attrs = if attrs.contains(',') || attrs.contains('"') || attrs.contains('\n') {
            format!("\"{}\"", attrs.replace('"', "\"\""))
        } else {
            attrs
        };
        out.push_str(&format!(
            "{},{},{},{},{},{}\n",
            e.ts_us,
            e.kind.name(),
            e.kind.category(),
            e.id,
            e.dur_us.map(|d| d.to_string()).unwrap_or_default(),
            attrs
        ));
    }
    out
}

/// A minimal JSON syntax checker used by tests (the tree has no JSON
/// parser dependency). Validates structure, not semantics.
#[doc(hidden)]
pub mod tests_support {
    /// Panics unless `s` is a syntactically valid JSON document.
    pub fn assert_valid_json(s: &str) {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        p.value();
        p.skip_ws();
        assert_eq!(p.pos, p.bytes.len(), "trailing garbage at {}", p.pos);
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn peek(&self) -> u8 {
            *self
                .bytes
                .get(self.pos)
                .unwrap_or_else(|| panic!("unexpected end of JSON at {}", self.pos))
        }

        fn bump(&mut self) -> u8 {
            let b = self.peek();
            self.pos += 1;
            b
        }

        fn skip_ws(&mut self) {
            while self.pos < self.bytes.len()
                && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
            {
                self.pos += 1;
            }
        }

        fn expect(&mut self, b: u8) {
            let got = self.bump();
            assert_eq!(
                got as char,
                b as char,
                "expected {:?} at {}",
                b as char,
                self.pos - 1
            );
        }

        fn literal(&mut self, lit: &str) {
            for b in lit.bytes() {
                self.expect(b);
            }
        }

        fn value(&mut self) {
            match self.peek() {
                b'{' => self.object(),
                b'[' => self.array(),
                b'"' => self.string(),
                b't' => self.literal("true"),
                b'f' => self.literal("false"),
                b'n' => self.literal("null"),
                b'-' | b'0'..=b'9' => self.number(),
                c => panic!("unexpected {:?} at {}", c as char, self.pos),
            }
        }

        fn object(&mut self) {
            self.expect(b'{');
            self.skip_ws();
            if self.peek() == b'}' {
                self.bump();
                return;
            }
            loop {
                self.skip_ws();
                self.string();
                self.skip_ws();
                self.expect(b':');
                self.skip_ws();
                self.value();
                self.skip_ws();
                match self.bump() {
                    b',' => continue,
                    b'}' => return,
                    c => panic!("expected , or }} got {:?}", c as char),
                }
            }
        }

        fn array(&mut self) {
            self.expect(b'[');
            self.skip_ws();
            if self.peek() == b']' {
                self.bump();
                return;
            }
            loop {
                self.skip_ws();
                self.value();
                self.skip_ws();
                match self.bump() {
                    b',' => continue,
                    b']' => return,
                    c => panic!("expected , or ] got {:?}", c as char),
                }
            }
        }

        fn string(&mut self) {
            self.expect(b'"');
            loop {
                match self.bump() {
                    b'"' => return,
                    b'\\' => {
                        let e = self.bump();
                        assert!(
                            matches!(
                                e,
                                b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' | b'u'
                            ),
                            "bad escape {:?}",
                            e as char
                        );
                        if e == b'u' {
                            for _ in 0..4 {
                                let h = self.bump();
                                assert!(h.is_ascii_hexdigit(), "bad \\u escape");
                            }
                        }
                    }
                    _ => {}
                }
            }
        }

        fn number(&mut self) {
            if self.peek() == b'-' {
                self.bump();
            }
            assert!(self.peek().is_ascii_digit(), "bad number");
            while self.pos < self.bytes.len()
                && matches!(
                    self.bytes[self.pos],
                    b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-'
                )
            {
                self.pos += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::assert_valid_json;
    use super::*;
    use crate::trace::EventKind;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::new(EventKind::FlowStart, 300, 1).with_u64("bytes", 2_097_152),
            Event::new(EventKind::ProbeWon, 100, 7)
                .with_str("path", "indirect via relay-3")
                .with_f64("rate", 1234.5),
            Event::span(EventKind::RunnerTask, 200, 900, 2).with_str("task", "c0×v1"),
        ]
    }

    #[test]
    fn chrome_trace_is_valid_and_ts_sorted() {
        let json = chrome_trace(&sample_events());
        assert_valid_json(&json);
        // Events were given out of order (300, 100, 200); export sorts.
        let i100 = json.find("\"ts\":100").expect("ts 100");
        let i200 = json.find("\"ts\":200").expect("ts 200");
        let i300 = json.find("\"ts\":300").expect("ts 300");
        assert!(i100 < i200 && i200 < i300, "ts must be non-decreasing");
        assert!(json.contains("\"ph\":\"X\""), "span becomes complete event");
        assert!(json.contains("\"dur\":900"));
        assert!(json.contains("\"ph\":\"i\""), "instants present");
    }

    #[test]
    fn chrome_trace_escapes_strings() {
        let evs = vec![Event::new(EventKind::Custom("weird\"name"), 1, 0)
            .with_str("note", "line\nbreak and \"quotes\"")];
        let json = chrome_trace(&evs);
        assert_valid_json(&json);
        assert!(json.contains("weird\\\"name"));
    }

    #[test]
    fn events_json_round_trips_fields() {
        let json = events_json(&sample_events());
        assert_valid_json(&json);
        assert!(json.contains("\"kind\":\"flow_start\""));
        assert!(json.contains("\"dur_us\":900"));
        assert!(json.contains("\"rate\":1234.5"));
    }

    #[test]
    fn events_csv_has_header_and_rows() {
        let csv = events_csv(&sample_events());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "ts_us,kind,cat,id,dur_us,attrs");
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("300,flow_start,simnet,1,,"));
        assert!(
            lines[2].ends_with("path=indirect via relay-3;rate=1234.5"),
            "attrs flattened: {}",
            lines[2]
        );
    }

    #[test]
    fn events_csv_quotes_embedded_commas() {
        let evs = vec![Event::new(EventKind::Custom("x"), 5, 0).with_str("note", "a,b")];
        let csv = events_csv(&evs);
        let row = csv.lines().nth(1).unwrap();
        assert!(row.ends_with("\"note=a,b\""), "quoted: {row}");
    }

    #[test]
    fn empty_exports_are_valid() {
        assert_eq!(chrome_trace(&[]), "[]");
        assert_eq!(events_json(&[]), "[]");
        assert_valid_json(&chrome_trace(&[]));
        assert_eq!(events_csv(&[]).lines().count(), 1);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let evs =
            vec![Event::new(EventKind::SessionComplete, 1, 0).with_f64("improvement", f64::NAN)];
        let json = chrome_trace(&evs);
        assert_valid_json(&json);
        assert!(json.contains("\"improvement\":null"));
    }
}
