//! `ir-telemetry` — deterministic observability for the
//! indirect-routing reproduction.
//!
//! The paper's analysis lives on per-transfer visibility: which path
//! won the 100 KB probe race, when the engine recomputed fair shares,
//! how long each relay leg took. This crate provides that visibility
//! as one subsystem wired through simnet, core, relay, and the
//! experiments CLI:
//!
//! * [`metrics`] — a thread-safe registry of counters, gauges, and
//!   log-scale histograms with lock-free hot-path updates and
//!   point-in-time [`metrics::Snapshot`]s (aligned text + JSON).
//! * [`trace`] — a ring-buffered structured event recorder: typed
//!   [`trace::EventKind`]s against simulated or wall microseconds.
//! * [`export`] — Chrome `trace_event` JSON (open in
//!   `chrome://tracing` / Perfetto), flat JSON, and CSV dumps.
//!
//! # The disabled-by-default contract
//!
//! Instrumented layers hold an `Option` of a shared [`Telemetry`]
//! handle (`Option<&Telemetry>` or `Option<Arc<Telemetry>>`). `None` —
//! the default everywhere — short-circuits before any work happens:
//! no allocation, no formatting, no locking. Telemetry is strictly
//! observational: it never consumes randomness, never advances a
//! clock, and never changes control flow, so an instrumented run
//! produces bit-identical results with telemetry on or off. The
//! `determinism` integration test and the
//! `experiments measurement --trace` acceptance check both pin this.
//!
//! # Example
//!
//! ```
//! use ir_telemetry::{Telemetry, trace::{Event, EventKind}};
//! use std::sync::Arc;
//!
//! let tel = Arc::new(Telemetry::new());
//! // Hot path: cache the handle once, update lock-free.
//! let flows = tel.metrics.counter("flows_started", vec![]);
//! flows.inc();
//! tel.tracer.record(
//!     Event::new(EventKind::FlowStart, 0, 1).with_u64("bytes", 4096),
//! );
//! // Reporting.
//! let text = tel.metrics.snapshot().render_text();
//! assert!(text.contains("flows_started"));
//! let chrome = tel.chrome_trace();
//! assert!(chrome.starts_with('['));
//! ```

pub mod export;
pub mod metrics;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, Labels, MetricsRegistry, Snapshot};
pub use trace::{Attr, Event, EventKind, Tracer, DEFAULT_TRACE_CAPACITY};

/// The combined telemetry handle: one metrics registry plus one event
/// tracer. Shared across threads via `Arc`.
#[derive(Debug, Default)]
pub struct Telemetry {
    /// Metric series.
    pub metrics: MetricsRegistry,
    /// Event ring buffer.
    pub tracer: Tracer,
}

impl Telemetry {
    /// Telemetry with the default trace capacity
    /// ([`DEFAULT_TRACE_CAPACITY`]).
    pub fn new() -> Telemetry {
        Telemetry::default()
    }

    /// Telemetry retaining at most `trace_capacity` events.
    pub fn with_trace_capacity(trace_capacity: usize) -> Telemetry {
        Telemetry {
            metrics: MetricsRegistry::new(),
            tracer: Tracer::with_capacity(trace_capacity),
        }
    }

    /// Chrome `trace_event` JSON of everything currently retained.
    pub fn chrome_trace(&self) -> String {
        export::chrome_trace(&self.tracer.snapshot())
    }

    /// Flat JSON dump of everything currently retained.
    pub fn events_json(&self) -> String {
        export::events_json(&self.tracer.snapshot())
    }

    /// CSV dump of everything currently retained.
    pub fn events_csv(&self) -> String {
        export::events_csv(&self.tracer.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Event, EventKind};

    #[test]
    fn combined_handle_round_trip() {
        let tel = Telemetry::with_trace_capacity(16);
        tel.metrics.counter("c", vec![]).add(2);
        tel.tracer.record(Event::new(EventKind::SessionStart, 5, 0));
        assert_eq!(tel.metrics.snapshot().counter("c", &vec![]), Some(2));
        assert_eq!(tel.tracer.len(), 1);
        export::tests_support::assert_valid_json(&tel.chrome_trace());
        export::tests_support::assert_valid_json(&tel.events_json());
    }

    #[test]
    fn telemetry_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Telemetry>();
    }
}
