//! The metrics registry: counters, gauges, and log-scale histograms
//! keyed by static names plus label sets.
//!
//! Design goals, in order:
//!
//! 1. **Cheap hot path.** Incrementing a counter or recording a
//!    histogram sample is a handful of relaxed atomic operations on a
//!    handle the caller obtained once at registration time. No locks,
//!    no allocation, no formatting.
//! 2. **Observational only.** Nothing here consumes randomness or
//!    advances any clock, so enabling metrics cannot perturb a
//!    deterministic simulation.
//! 3. **Point-in-time snapshots.** [`MetricsRegistry::snapshot`]
//!    captures every registered series and renders to aligned text or
//!    JSON without stopping writers (relaxed reads; a snapshot is a
//!    consistent-enough view for reporting, not a linearization).
//!
//! Registration takes a `Mutex` (std; the tree has no `parking_lot`)
//! — acceptable because registration happens once per series, off the
//! hot path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A label set: sorted `(key, value)` pairs distinguishing series that
/// share a metric name, e.g. `[("path", "indirect")]`.
pub type Labels = Vec<(&'static str, String)>;

fn canonical(labels: &Labels) -> Labels {
    let mut l = labels.clone();
    l.sort();
    l
}

/// Monotonically increasing counter. Cloning shares the underlying
/// cell.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Last-write-wins gauge holding an `f64` (stored as bits in an
/// `AtomicU64`). Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Number of log2 buckets. Bucket `i` (for `i >= 1`) counts values `v`
/// with `floor(log2(v)) == i - 1`; bucket 0 counts zeros. Covers the
/// full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Log-scale histogram of `u64` samples (durations in µs, byte counts,
/// …). Cloning shares the underlying cells.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Arc<[AtomicU64; HISTOGRAM_BUCKETS]>,
    count: Arc<AtomicU64>,
    sum: Arc<AtomicU64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: Arc::new(std::array::from_fn(|_| AtomicU64::new(0))),
            count: Arc::new(AtomicU64::new(0)),
            sum: Arc::new(AtomicU64::new(0)),
        }
    }
}

fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean sample, or NaN when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            f64::NAN
        } else {
            self.sum() as f64 / n as f64
        }
    }

    fn snapshot_buckets(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Approximate quantile (`q` in `[0, 1]`) from bucket boundaries:
    /// returns the upper bound of the bucket holding the `q`-th sample,
    /// or NaN when empty. Log-scale accuracy: within 2x of the true
    /// value.
    pub fn quantile(&self, q: f64) -> f64 {
        let buckets = self.snapshot_buckets();
        let total: u64 = buckets.iter().sum();
        if total == 0 {
            return f64::NAN;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper_bound(i);
            }
        }
        f64::INFINITY
    }
}

/// Upper bound of bucket `i` (inclusive), as f64.
fn bucket_upper_bound(i: usize) -> f64 {
    if i == 0 {
        0.0
    } else if i >= 64 {
        u64::MAX as f64
    } else {
        ((1u128 << i) - 1) as f64
    }
}

#[derive(Default)]
struct Series {
    counters: BTreeMap<(&'static str, Labels), Counter>,
    gauges: BTreeMap<(&'static str, Labels), Gauge>,
    histograms: BTreeMap<(&'static str, Labels), Histogram>,
}

/// Thread-safe registry of named metric series.
#[derive(Default)]
pub struct MetricsRegistry {
    series: Mutex<Series>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry").finish_non_exhaustive()
    }
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or retrieves) the counter `name` with `labels`. The
    /// returned handle is lock-free to update; keep it rather than
    /// re-registering per increment.
    pub fn counter(&self, name: &'static str, labels: Labels) -> Counter {
        self.series
            .lock()
            .expect("metrics poisoned")
            .counters
            .entry((name, canonical(&labels)))
            .or_default()
            .clone()
    }

    /// Registers (or retrieves) the gauge `name` with `labels`.
    pub fn gauge(&self, name: &'static str, labels: Labels) -> Gauge {
        self.series
            .lock()
            .expect("metrics poisoned")
            .gauges
            .entry((name, canonical(&labels)))
            .or_default()
            .clone()
    }

    /// Registers (or retrieves) the histogram `name` with `labels`.
    pub fn histogram(&self, name: &'static str, labels: Labels) -> Histogram {
        self.series
            .lock()
            .expect("metrics poisoned")
            .histograms
            .entry((name, canonical(&labels)))
            .or_default()
            .clone()
    }

    /// Point-in-time view of every registered series.
    pub fn snapshot(&self) -> Snapshot {
        let s = self.series.lock().expect("metrics poisoned");
        let mut rows = Vec::new();
        for ((name, labels), c) in &s.counters {
            rows.push(MetricRow {
                name,
                labels: labels.clone(),
                value: MetricValue::Counter(c.get()),
            });
        }
        for ((name, labels), g) in &s.gauges {
            rows.push(MetricRow {
                name,
                labels: labels.clone(),
                value: MetricValue::Gauge(g.get()),
            });
        }
        for ((name, labels), h) in &s.histograms {
            rows.push(MetricRow {
                name,
                labels: labels.clone(),
                value: MetricValue::Histogram {
                    count: h.count(),
                    sum: h.sum(),
                    mean: h.mean(),
                    p50: h.quantile(0.50),
                    p99: h.quantile(0.99),
                },
            });
        }
        rows.sort_by(|a, b| (a.name, &a.labels).cmp(&(b.name, &b.labels)));
        Snapshot { rows }
    }
}

/// Value of one series at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(f64),
    /// Histogram summary.
    Histogram {
        /// Samples recorded.
        count: u64,
        /// Sum of samples.
        sum: u64,
        /// Mean sample (NaN when empty).
        mean: f64,
        /// Approximate median.
        p50: f64,
        /// Approximate 99th percentile.
        p99: f64,
    },
}

/// One series in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricRow {
    /// Metric name.
    pub name: &'static str,
    /// Label set (sorted).
    pub labels: Labels,
    /// Reading.
    pub value: MetricValue,
}

impl MetricRow {
    fn label_string(&self) -> String {
        if self.labels.is_empty() {
            String::new()
        } else {
            let parts: Vec<String> = self
                .labels
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            format!("{{{}}}", parts.join(","))
        }
    }
}

/// Point-in-time view of a registry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Rows sorted by (name, labels).
    pub rows: Vec<MetricRow>,
}

impl Snapshot {
    /// True when no series were registered.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Looks up a counter reading by name and labels.
    pub fn counter(&self, name: &str, labels: &Labels) -> Option<u64> {
        let want = canonical(labels);
        self.rows.iter().find_map(|r| match r.value {
            MetricValue::Counter(v) if r.name == name && r.labels == want => Some(v),
            _ => None,
        })
    }

    /// Aligned plain-text rendering, one series per line.
    pub fn render_text(&self) -> String {
        let keys: Vec<String> = self
            .rows
            .iter()
            .map(|r| format!("{}{}", r.name, r.label_string()))
            .collect();
        let width = keys.iter().map(|k| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (key, row) in keys.iter().zip(&self.rows) {
            let value = match &row.value {
                MetricValue::Counter(v) => format!("{v}"),
                MetricValue::Gauge(v) => format!("{v:.3}"),
                MetricValue::Histogram {
                    count,
                    mean,
                    p50,
                    p99,
                    ..
                } => format!("count {count}  mean {mean:.1}  p50 ~{p50:.0}  p99 ~{p99:.0}"),
            };
            out.push_str(&format!("{key:<width$}  {value}\n"));
        }
        out
    }

    /// JSON rendering: an array of `{name, labels, type, ...}` objects.
    pub fn render_json(&self) -> String {
        let mut out = String::from("[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            out.push_str(&crate::export::json_string(row.name));
            out.push_str(",\"labels\":{");
            for (j, (k, v)) in row.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&crate::export::json_string(k));
                out.push(':');
                out.push_str(&crate::export::json_string(v));
            }
            out.push('}');
            match &row.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!(",\"type\":\"counter\",\"value\":{v}"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(",\"type\":\"gauge\",\"value\":");
                    out.push_str(&crate::export::json_f64(*v));
                }
                MetricValue::Histogram {
                    count,
                    sum,
                    mean,
                    p50,
                    p99,
                } => {
                    out.push_str(&format!(
                        ",\"type\":\"histogram\",\"count\":{count},\"sum\":{sum},\"mean\":"
                    ));
                    out.push_str(&crate::export::json_f64(*mean));
                    out.push_str(",\"p50\":");
                    out.push_str(&crate::export::json_f64(*p50));
                    out.push_str(",\"p99\":");
                    out.push_str(&crate::export::json_f64(*p99));
                }
            }
            out.push('}');
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_aggregates_across_threads() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("flows_started", vec![]);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
        assert_eq!(
            reg.snapshot().counter("flows_started", &vec![]),
            Some(80_000)
        );
    }

    #[test]
    fn same_name_same_labels_shares_a_cell() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x", vec![("k", "v".into())]);
        let b = reg.counter("x", vec![("k", "v".into())]);
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        // Different labels → different series.
        let c = reg.counter("x", vec![("k", "w".into())]);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn label_order_does_not_matter() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("m", vec![("a", "1".into()), ("b", "2".into())]);
        let b = reg.counter("m", vec![("b", "2".into()), ("a", "1".into())]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn gauge_last_write_wins() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("queue_depth", vec![]);
        g.set(2.5);
        g.set(7.25);
        assert_eq!(g.get(), 7.25);
    }

    #[test]
    fn histogram_moments_and_quantiles() {
        let h = Histogram::default();
        assert!(h.mean().is_nan());
        assert!(h.quantile(0.5).is_nan());
        for v in [1u64, 2, 4, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1015);
        assert!((h.mean() - 203.0).abs() < 1e-9);
        // p50 lands in the bucket containing 4 (bucket upper bound 7).
        let p50 = h.quantile(0.5);
        assert!((4.0..=7.0).contains(&p50), "p50 {p50}");
        // p99 lands in 1000's bucket (upper bound 1023).
        let p99 = h.quantile(0.99);
        assert!((1000.0..=1023.0).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn histogram_zero_and_max() {
        let h = Histogram::default();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.0), 0.0);
        assert!(h.quantile(1.0) > 1e18);
    }

    #[test]
    fn histogram_aggregates_across_threads() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("latency_us", vec![]);
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
    }

    #[test]
    fn snapshot_renders_text_aligned() {
        let reg = MetricsRegistry::new();
        reg.counter("long_counter_name", vec![]).add(5);
        reg.gauge("g", vec![("host", "a".into())]).set(1.0);
        let text = reg.snapshot().render_text();
        assert!(text.contains("long_counter_name"));
        assert!(text.contains("g{host=a}"));
        // Both value columns start at the same offset.
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let col: Vec<usize> = lines
            .iter()
            .map(|l| l.find("  ").expect("two-space separator"))
            .collect();
        assert!(col[0] == col[1] || lines[0].split_whitespace().count() >= 2);
    }

    #[test]
    fn snapshot_renders_json() {
        let reg = MetricsRegistry::new();
        reg.counter("c", vec![]).inc();
        reg.gauge("g", vec![]).set(f64::NAN); // must not produce bare NaN
        reg.histogram("h", vec![]).record(3);
        let json = reg.snapshot().render_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"type\":\"counter\""));
        assert!(json.contains("\"type\":\"gauge\""));
        assert!(json.contains("\"type\":\"histogram\""));
        assert!(!json.contains("NaN"), "NaN must be rendered as null");
        crate::export::tests_support::assert_valid_json(&json);
    }

    #[test]
    fn bucket_of_is_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
    }
}
