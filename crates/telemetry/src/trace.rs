//! The structured event tracer: typed events against simulated or wall
//! time, ring-buffered so paper-scale runs stay bounded.
//!
//! Timestamps are plain microseconds (`u64`). Simulation emitters pass
//! `SimTime::as_micros()`; wall-clock emitters (the socket relay) pass
//! microseconds since their epoch `Instant`. The tracer never reads a
//! clock itself — that keeps it deterministic and dependency-free.
//!
//! The ring holds the **most recent** `capacity` events; older events
//! are dropped and counted, never silently lost.

use std::collections::VecDeque;
use std::sync::Mutex;

/// What happened. The taxonomy covers the four instrumented layers:
/// the flow engine (simnet), the session protocol (core), the socket
/// relay, and the experiment runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A flow started in the simulator.
    FlowStart,
    /// A flow ran to completion.
    FlowComplete,
    /// A flow was cancelled before completing.
    FlowCancel,
    /// The engine recomputed max–min fair shares at a boundary.
    FairShareRecompute,
    /// A scheduled fault event (link outage/repair, brownout, node
    /// crash/restart) was applied; attrs carry the kind and factor.
    FaultInjected,
    /// The engine rebuilt its flow↔link congestion partition from the
    /// live membership (departures invalidate the incremental
    /// union–find); `id` carries the active-flow count.
    PartitionRebuild,
    /// A probe race began (one event per session).
    ProbeStart,
    /// A probe race was decided; the attrs name the winning path.
    ProbeWon,
    /// The whole probe race timed out.
    ProbeTimeout,
    /// The session chose the indirect path (a path switch away from
    /// the default route).
    PathSwitch,
    /// The session abandoned a dead/stalled selected path mid-transfer
    /// and failed over to a surviving candidate.
    PathFailover,
    /// A candidate path could not be resolved on the transport and was
    /// dropped from the probe race; attrs carry the path.
    PathUnresolvable,
    /// A session began.
    SessionStart,
    /// A session finished; attrs carry the improvement.
    SessionComplete,
    /// The relay daemon accepted a client connection.
    RelayAccept,
    /// The relay spliced one request's response from origin to client.
    RelaySplice,
    /// The relay wrote the first client-bound byte of a connection;
    /// span duration is the accept-to-first-byte wait.
    RelayFirstByte,
    /// The relay began a graceful drain.
    RelayDrain,
    /// The relay daemon shut down.
    RelayShutdown,
    /// A retry or fallback (e.g. probe timeout → direct re-fetch).
    Retry,
    /// The striper reassigned a chunk's remaining bytes away from a
    /// stalled, dead, or drifting path; attrs carry the chunk id, the
    /// losing path, and the reason.
    ChunkReassigned,
    /// A runner task (one (client, relay/k) schedule) ran; `dur_us`
    /// spans it.
    RunnerTask,
    /// A path selector produced its candidate paths for one session;
    /// `dur_us` spans the decision, attrs carry the policy name and
    /// path count.
    SelectionDecision,
    /// The sweep scheduler materialised a study (executed it or decoded
    /// it from the artefact cache); `dur_us` spans the materialisation.
    StudyExec,
    /// The sweep scheduler materialised an artefact (rendered it or
    /// restored its cached bundle); `dur_us` spans it.
    ArtifactRender,
    /// Escape hatch for ad-hoc instrumentation.
    Custom(&'static str),
}

impl EventKind {
    /// Stable name used by every exporter.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::FlowStart => "flow_start",
            EventKind::FlowComplete => "flow_complete",
            EventKind::FlowCancel => "flow_cancel",
            EventKind::FairShareRecompute => "fair_share_recompute",
            EventKind::FaultInjected => "fault_injected",
            EventKind::PartitionRebuild => "partition_rebuild",
            EventKind::ProbeStart => "probe_start",
            EventKind::ProbeWon => "probe_won",
            EventKind::ProbeTimeout => "probe_timeout",
            EventKind::PathSwitch => "path_switch",
            EventKind::PathUnresolvable => "path_unresolvable",
            EventKind::PathFailover => "path_failover",
            EventKind::SessionStart => "session_start",
            EventKind::SessionComplete => "session_complete",
            EventKind::RelayAccept => "relay_accept",
            EventKind::RelaySplice => "relay_splice",
            EventKind::RelayFirstByte => "relay_first_byte",
            EventKind::RelayDrain => "relay_drain",
            EventKind::RelayShutdown => "relay_shutdown",
            EventKind::Retry => "retry",
            EventKind::ChunkReassigned => "chunk_reassigned",
            EventKind::RunnerTask => "runner_task",
            EventKind::SelectionDecision => "selection_decision",
            EventKind::StudyExec => "study_exec",
            EventKind::ArtifactRender => "artifact_render",
            EventKind::Custom(name) => name,
        }
    }

    /// Category (Chrome trace `cat` field): which layer emitted it.
    pub fn category(self) -> &'static str {
        match self {
            EventKind::FlowStart
            | EventKind::FlowComplete
            | EventKind::FlowCancel
            | EventKind::FairShareRecompute
            | EventKind::FaultInjected
            | EventKind::PartitionRebuild => "simnet",
            EventKind::ProbeStart
            | EventKind::ProbeWon
            | EventKind::ProbeTimeout
            | EventKind::PathSwitch
            | EventKind::PathUnresolvable
            | EventKind::PathFailover
            | EventKind::SessionStart
            | EventKind::SessionComplete
            | EventKind::Retry => "session",
            EventKind::ChunkReassigned => "stripe",
            EventKind::RelayAccept
            | EventKind::RelaySplice
            | EventKind::RelayFirstByte
            | EventKind::RelayDrain
            | EventKind::RelayShutdown => "relay",
            EventKind::RunnerTask => "runner",
            EventKind::SelectionDecision => "policy",
            EventKind::StudyExec | EventKind::ArtifactRender => "sweep",
            EventKind::Custom(_) => "custom",
        }
    }
}

/// An attribute value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum Attr {
    /// Unsigned integer.
    U64(u64),
    /// Float.
    F64(f64),
    /// Text.
    Str(String),
}

impl std::fmt::Display for Attr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Attr::U64(v) => write!(f, "{v}"),
            Attr::F64(v) => write!(f, "{v}"),
            Attr::Str(v) => write!(f, "{v}"),
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Microseconds on the emitter's clock (simulated or wall).
    pub ts_us: u64,
    /// What happened.
    pub kind: EventKind,
    /// Emitter-scoped correlation id (flow id, session index,
    /// connection number, task index…).
    pub id: u64,
    /// Span duration, for events that cover an interval.
    pub dur_us: Option<u64>,
    /// Free-form attributes.
    pub attrs: Vec<(&'static str, Attr)>,
}

impl Event {
    /// An instant event.
    pub fn new(kind: EventKind, ts_us: u64, id: u64) -> Event {
        Event {
            ts_us,
            kind,
            id,
            dur_us: None,
            attrs: Vec::new(),
        }
    }

    /// A span event covering `[ts_us, ts_us + dur_us]`.
    pub fn span(kind: EventKind, ts_us: u64, dur_us: u64, id: u64) -> Event {
        Event {
            ts_us,
            kind,
            id,
            dur_us: Some(dur_us),
            attrs: Vec::new(),
        }
    }

    /// Attaches an attribute (builder style).
    pub fn with(mut self, key: &'static str, value: Attr) -> Event {
        self.attrs.push((key, value));
        self
    }

    /// Attaches an unsigned attribute.
    pub fn with_u64(self, key: &'static str, value: u64) -> Event {
        self.with(key, Attr::U64(value))
    }

    /// Attaches a float attribute.
    pub fn with_f64(self, key: &'static str, value: f64) -> Event {
        self.with(key, Attr::F64(value))
    }

    /// Attaches a text attribute.
    pub fn with_str(self, key: &'static str, value: impl Into<String>) -> Event {
        self.with(key, Attr::Str(value.into()))
    }
}

struct Ring {
    buf: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

/// Ring-buffered event recorder. Thread-safe; recording takes a short
/// mutex (events are orders of magnitude rarer than metric updates).
pub struct Tracer {
    ring: Mutex<Ring>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").finish_non_exhaustive()
    }
}

/// Default ring capacity: enough for a paper-scale quick run without
/// unbounded growth on larger ones.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

impl Default for Tracer {
    fn default() -> Self {
        Tracer::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl Tracer {
    /// A tracer retaining at most `capacity` most-recent events.
    pub fn with_capacity(capacity: usize) -> Tracer {
        assert!(capacity > 0, "zero trace capacity");
        Tracer {
            ring: Mutex::new(Ring {
                buf: VecDeque::with_capacity(capacity.min(4096)),
                capacity,
                dropped: 0,
            }),
        }
    }

    /// Records an event, evicting the oldest if the ring is full.
    pub fn record(&self, event: Event) {
        let mut ring = self.ring.lock().expect("tracer poisoned");
        if ring.buf.len() == ring.capacity {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(event);
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("tracer poisoned").buf.len()
    }

    /// True when nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted due to capacity so far.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().expect("tracer poisoned").dropped
    }

    /// Copies out the retained events in arrival order.
    pub fn snapshot(&self) -> Vec<Event> {
        self.ring
            .lock()
            .expect("tracer poisoned")
            .buf
            .iter()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let t = Tracer::with_capacity(8);
        assert!(t.is_empty());
        t.record(Event::new(EventKind::FlowStart, 10, 1));
        t.record(Event::new(EventKind::FlowComplete, 20, 1).with_u64("bytes", 100));
        let evs = t.snapshot();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].kind, EventKind::FlowStart);
        assert_eq!(evs[1].attrs[0], ("bytes", Attr::U64(100)));
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_evicts_oldest() {
        let t = Tracer::with_capacity(3);
        for i in 0..5 {
            t.record(Event::new(EventKind::FairShareRecompute, i, 0));
        }
        let evs = t.snapshot();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].ts_us, 2, "oldest two evicted");
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn concurrent_recording_loses_nothing_under_capacity() {
        let t = Tracer::with_capacity(100_000);
        std::thread::scope(|s| {
            for th in 0..4 {
                let t = &t;
                s.spawn(move || {
                    for i in 0..1000 {
                        t.record(Event::new(EventKind::RelaySplice, i, th));
                    }
                });
            }
        });
        assert_eq!(t.len(), 4000);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn kind_names_and_categories_are_stable() {
        assert_eq!(EventKind::FlowStart.name(), "flow_start");
        assert_eq!(EventKind::FlowStart.category(), "simnet");
        assert_eq!(EventKind::ProbeWon.category(), "session");
        assert_eq!(EventKind::RelayAccept.category(), "relay");
        assert_eq!(EventKind::RunnerTask.category(), "runner");
        assert_eq!(EventKind::ChunkReassigned.name(), "chunk_reassigned");
        assert_eq!(EventKind::ChunkReassigned.category(), "stripe");
        assert_eq!(EventKind::Custom("x").name(), "x");
    }

    #[test]
    #[should_panic(expected = "zero trace capacity")]
    fn zero_capacity_panics() {
        Tracer::with_capacity(0);
    }
}
