//! Smoke tests of the `experiments` CLI binary.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
}

#[test]
fn usage_on_no_args() {
    let out = bin().output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn unknown_artefact_is_usage_error() {
    let out = bin().arg("fig99").output().expect("run");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn scenario_inspector_succeeds() {
    let out = bin()
        .args(["scenario", "--seed", "5"])
        .output()
        .expect("run");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Scenario inspection"), "{stdout}");
    assert!(stdout.contains("Berlin"), "{stdout}");
}

#[test]
fn fig1_passes_and_writes_csv() {
    let dir = std::env::temp_dir().join(format!("ir_cli_smoke_{}", std::process::id()));
    let out = bin()
        .args(["fig1", "--seed", "2007", "--csv"])
        .arg(&dir)
        .output()
        .expect("run");
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(dir.join("fig1_histogram.csv").exists());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_cal_file_is_rejected_with_line_number() {
    let path = std::env::temp_dir().join(format!("ir_bad_cal_{}.txt", std::process::id()));
    std::fs::write(&path, "frac_high = banana\n").unwrap();
    let out = bin()
        .args(["fig1", "--cal"])
        .arg(&path)
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 1"), "{err}");
    std::fs::remove_file(&path).ok();
}
