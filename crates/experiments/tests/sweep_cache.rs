//! End-to-end acceptance for the dependency-aware sweep scheduler and
//! the content-addressed artefact cache (ISSUE PR5):
//!
//! * a cold sweep followed by a warm sweep serves 100% of studies and
//!   artefacts from cache, and the warm artefact *files on disk* are
//!   byte-identical to a cacheless run's;
//! * shared-study dedup is observable through the telemetry counters
//!   (`sweep_studies_executed` < `sweep_artefacts`);
//! * a tampered cache entry is detected and recomputed, never trusted.

use ir_artifact::ArtifactCache;
use ir_experiments::sweep::{mini_plan, run_sweep};
use ir_telemetry::Telemetry;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A fresh scratch directory, unique per (process, label).
fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ir-sweep-{}-{}", label, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Reads every regular file in `dir` into a name → bytes map.
fn dir_files(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let entry = entry.unwrap();
        if entry.file_type().unwrap().is_file() {
            out.insert(
                entry.file_name().into_string().unwrap(),
                std::fs::read(entry.path()).unwrap(),
            );
        }
    }
    out
}

const SEED: u64 = 11;

#[test]
fn warm_sweep_is_fully_cached_and_byte_identical_to_cacheless() {
    let cache_dir = scratch("cache");
    let cold_out = scratch("cold");
    let warm_out = scratch("warm");
    let plain_out = scratch("plain");
    let cache = ArtifactCache::open(&cache_dir).unwrap();

    // Cold pass: everything misses, every study and artefact is stored.
    let cold_tel = Arc::new(Telemetry::new());
    let cold = run_sweep(
        mini_plan(SEED),
        Some(&cache),
        Some(&cold_out),
        Some(&cold_tel),
    )
    .unwrap();
    assert_eq!(cold.cache_hits, 0);
    assert!(cold.cache_stores > 0);
    // (The mini plan's paper-band checks are not asserted: at 4×4×1
    // quick scale they legitimately miss the bands. Byte-identity and
    // cache behaviour are what this test owns.)
    assert!(cold.artefacts.iter().all(|a| !a.output.text.is_empty()));

    // Shared-study dedup, observable through telemetry: the mini plan
    // has two artefacts on one study, so strictly fewer study
    // executions than artefacts.
    let snap = cold_tel.metrics.snapshot();
    let counter = |name: &str| snap.counter(name, &vec![]).unwrap_or(0);
    assert!(
        counter("sweep_studies_executed") < counter("sweep_artefacts"),
        "dedup not observable: {} studies executed for {} artefacts",
        counter("sweep_studies_executed"),
        counter("sweep_artefacts"),
    );
    assert_eq!(counter("artifact_cache_hits"), 0);
    assert_eq!(counter("artifact_cache_stores"), cold.cache_stores);

    // Warm pass: 100% served from cache, zero study executions.
    let warm_tel = Arc::new(Telemetry::new());
    let warm = run_sweep(
        mini_plan(SEED),
        Some(&cache),
        Some(&warm_out),
        Some(&warm_tel),
    )
    .unwrap();
    assert_eq!(warm.studies_executed(), 0, "warm pass ran a study");
    assert_eq!(warm.artefact_hits(), warm.artefacts.len() as u64);
    assert_eq!(warm.cache_misses, 0);
    assert_eq!(warm.cache_corrupt, 0);
    assert!((warm.hit_rate() - 1.0).abs() < 1e-12, "{}", warm.hit_rate());
    let warm_snap = warm_tel.metrics.snapshot();
    assert_eq!(
        warm_snap.counter("sweep_studies_executed", &vec![]),
        Some(0)
    );

    // Cacheless baseline.
    let plain = run_sweep(mini_plan(SEED), None, Some(&plain_out), None).unwrap();
    assert_eq!(
        plain.cache_hits + plain.cache_misses + plain.cache_stores,
        0
    );

    // The warm pass's files on disk are byte-identical to both the
    // cold pass's and the cacheless run's.
    let cold_files = dir_files(&cold_out);
    let warm_files = dir_files(&warm_out);
    let plain_files = dir_files(&plain_out);
    assert!(!warm_files.is_empty());
    assert_eq!(warm_files, plain_files, "warm files diverge from cacheless");
    assert_eq!(warm_files, cold_files, "warm files diverge from cold");

    for dir in [&cache_dir, &cold_out, &warm_out, &plain_out] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn tampered_cache_entries_are_recomputed_not_trusted() {
    let cache_dir = scratch("tamper");
    let cache = ArtifactCache::open(&cache_dir).unwrap();
    let cold = run_sweep(mini_plan(SEED), Some(&cache), None, None).unwrap();

    // Flip one payload byte in every stored entry and truncate one.
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&cache_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    assert_eq!(entries.len(), cold.cache_stores as usize);
    for path in &entries {
        let mut bytes = std::fs::read(path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(path, &bytes).unwrap();
    }
    let truncated = &entries[0];
    let bytes = std::fs::read(truncated).unwrap();
    std::fs::write(truncated, &bytes[..bytes.len() / 2]).unwrap();

    // The re-run must detect every corruption, recompute, and still
    // produce the exact same artefact bundles as an honest run.
    let rerun = run_sweep(mini_plan(SEED), Some(&cache), None, None).unwrap();
    assert_eq!(rerun.cache_hits, 0);
    assert_eq!(rerun.cache_corrupt, entries.len() as u64);
    let honest = run_sweep(mini_plan(SEED), None, None, None).unwrap();
    for (r, h) in rerun.artefacts.iter().zip(honest.artefacts.iter()) {
        assert_eq!(r.output, h.output, "tampered rerun diverges for {}", r.name);
    }

    // And the repaired cache serves a clean warm pass again.
    let warm = run_sweep(mini_plan(SEED), Some(&cache), None, None).unwrap();
    assert_eq!(warm.studies_executed(), 0);
    assert!((warm.hit_rate() - 1.0).abs() < 1e-12);

    let _ = std::fs::remove_dir_all(&cache_dir);
}
