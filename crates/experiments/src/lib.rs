//! `ir-experiments` — reproduction harness for every table and figure
//! of the paper's evaluation.
//!
//! | artefact | module | study |
//! |---|---|---|
//! | Fig 1 (improvement histogram) | [`fig1`] | measurement (§2.2) |
//! | Fig 2 (per-client histograms) | [`fig2`] | measurement |
//! | Table I (penalty statistics)  | [`table1`] | measurement |
//! | Table II (top-3 intermediates) | [`table2`] | measurement |
//! | Fig 3 (improvement vs throughput) | [`fig3`] | measurement |
//! | Fig 4 (indirect throughput vs time) | [`fig4`] | measurement |
//! | Fig 5 (node utilization) | [`fig5`] | measurement |
//! | Fig 6 (improvement vs random-set size) | [`fig6`] | selection (§4) |
//! | Table III (utilization vs improvement) | [`table3`] | selection |
//!
//! Five extension experiments go beyond the paper's artefacts:
//! [`sites`] (the abstract's per-site 33–49% range), [`headroom`]
//! (oracle-attainable vs captured improvement — only a simulator can
//! measure this), [`faults`] (availability/goodput under overlay
//! outages and relay churn with session failover enabled),
//! [`striping`] (multi-source range striping vs racing on the
//! variability grid, including the stale-prediction penalty tail),
//! and [`soak`] (thousands of concurrent racing downloads through one
//! event-driven relay daemon over real loopback sockets — the only
//! wall-clock study, kept out of the byte-replayable sweep).
//!
//! [`runner`] drives the two studies; each artefact module turns study
//! data into a [`report::Report`] with paper-vs-measured checks and CSV
//! series. The `experiments` binary wraps it all in a CLI.
//! [`bench_gate`] is the perf-regression runner behind the `bench-gate`
//! subcommand: it times the micro/figures benchmark groups, records the
//! incremental engine's solve split on the pinned Fig 1 study, and
//! enforces the boundary-count determinism canary (`BENCH_PR4.json`).

pub mod bench_gate;
pub mod codec;
pub mod faults;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod headroom;
pub mod inspect;
pub mod megaflow;
pub mod overhead;
pub mod report;
pub mod robustness;
pub mod runner;
pub mod sites;
pub mod soak;
pub mod striping;
pub mod sweep;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod tournament;
pub mod variability;

pub use report::{Check, Report};
pub use runner::{
    effective_worker_threads, measurement_study_default, measurement_study_default_traced,
    run_measurement_study, run_measurement_study_traced, run_selection_study,
    run_selection_study_traced, selection_study_default, selection_study_default_traced,
    set_worker_threads, MeasurementData, PairRun, Scale, SelectionData, SelectionRun, FIG6_KS,
};

/// Runs every measurement-study artefact on shared data.
pub fn measurement_reports(data: &MeasurementData) -> Vec<Report> {
    vec![
        fig1::report(data),
        fig2::report(data),
        table1::report(data),
        table2::report(data),
        fig3::report(data),
        fig4::report(data),
        fig5::report(data),
        variability::report(data),
        overhead::report(data),
    ]
}

/// Runs every selection-study artefact on shared data.
pub fn selection_reports(data: &SelectionData) -> Vec<Report> {
    vec![fig6::report(data), table3::report(data)]
}
