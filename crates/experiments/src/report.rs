//! Report plumbing: paper-vs-measured checks, text rendering, CSV
//! export.

use std::fmt::Write as _;
use std::path::Path;

/// One paper-vs-measured comparison line.
#[derive(Debug, Clone)]
pub struct Check {
    /// What is being compared, e.g. "mean improvement (%)".
    pub metric: String,
    /// The paper's reported value.
    pub paper: f64,
    /// Our measured value.
    pub measured: f64,
    /// Acceptance band for the *shape* claim, as (lo, hi) on the
    /// measured value. `None` for informational rows.
    pub band: Option<(f64, f64)>,
}

impl Check {
    /// A checked row.
    pub fn banded(metric: impl Into<String>, paper: f64, measured: f64, lo: f64, hi: f64) -> Self {
        Check {
            metric: metric.into(),
            paper,
            measured,
            band: Some((lo, hi)),
        }
    }

    /// An informational row (reported, not gated).
    pub fn info(metric: impl Into<String>, paper: f64, measured: f64) -> Self {
        Check {
            metric: metric.into(),
            paper,
            measured,
            band: None,
        }
    }

    /// Whether the measured value sits inside the band (true for
    /// informational rows).
    pub fn passes(&self) -> bool {
        match self.band {
            None => true,
            Some((lo, hi)) => self.measured >= lo && self.measured <= hi,
        }
    }
}

/// A rendered experiment artefact.
#[derive(Debug, Clone)]
pub struct Report {
    /// Artefact id: "fig1" … "table3".
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// Rendered tables/prose.
    pub body: String,
    /// Named CSV series for external plotting.
    pub csv: Vec<(String, String)>,
    /// Paper-vs-measured rows.
    pub checks: Vec<Check>,
}

impl Report {
    /// Renders the full report (title, body, check table).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let rule = "=".repeat(self.title.len());
        let _ = writeln!(out, "{}\n{}\n", self.title, rule);
        out.push_str(&self.body);
        if !self.checks.is_empty() {
            let mut t = ir_stats::TextTable::new()
                .title("paper vs measured")
                .header(["metric", "paper", "measured", "band", "ok"]);
            for c in &self.checks {
                t.row([
                    c.metric.clone(),
                    format!("{:.1}", c.paper),
                    format!("{:.1}", c.measured),
                    match c.band {
                        Some((lo, hi)) => format!("[{lo:.0},{hi:.0}]"),
                        None => "-".into(),
                    },
                    if c.passes() {
                        "yes".into()
                    } else {
                        "NO".to_string()
                    },
                ]);
            }
            out.push('\n');
            out.push_str(&t.render());
        }
        out
    }

    /// True iff every banded check passes.
    pub fn all_pass(&self) -> bool {
        self.checks.iter().all(Check::passes)
    }

    /// Writes the CSV series under `dir` (creating it), named
    /// `<id>_<name>.csv`.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<Vec<std::path::PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let mut written = Vec::new();
        for (name, contents) in &self.csv {
            let path = dir.join(format!("{}_{}.csv", self.id, name));
            std::fs::write(&path, contents)?;
            written.push(path);
        }
        Ok(written)
    }
}

/// Builds a CSV string from a header and rows of columns.
pub fn csv(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_bands() {
        let ok = Check::banded("x", 49.0, 45.0, 30.0, 70.0);
        assert!(ok.passes());
        let bad = Check::banded("x", 49.0, 10.0, 30.0, 70.0);
        assert!(!bad.passes());
        assert!(Check::info("y", 1.0, 99.0).passes());
    }

    #[test]
    fn report_renders_checks() {
        let r = Report {
            id: "fig1",
            title: "Fig 1".into(),
            body: "hello\n".into(),
            csv: vec![("hist".into(), "a,b\n1,2\n".into())],
            checks: vec![Check::banded("mean", 49.0, 51.0, 30.0, 70.0)],
        };
        let s = r.render();
        assert!(s.contains("Fig 1"));
        assert!(s.contains("mean"));
        assert!(s.contains("yes"));
        assert!(r.all_pass());
    }

    #[test]
    fn csv_builder() {
        let s = csv(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(s, "a,b\n1,2\n");
    }

    #[test]
    fn write_csv_creates_files() {
        let dir = std::env::temp_dir().join(format!("ir_report_test_{}", std::process::id()));
        let r = Report {
            id: "figx",
            title: "t".into(),
            body: String::new(),
            csv: vec![("s".into(), "a\n1\n".into())],
            checks: vec![],
        };
        let files = r.write_csv(&dir).unwrap();
        assert_eq!(files.len(), 1);
        assert!(files[0].exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
