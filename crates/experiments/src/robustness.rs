//! Seed robustness: the reproduction's shapes must hold across seeds,
//! not just at the default.
//!
//! Runs the (quick-scale) measurement study under several seeds and
//! reports Fig 1's four headline statistics per seed, plus the fraction
//! of seeds for which every Fig 1 band holds. Guards against a
//! calibration that only works at one lucky draw of the scenario.

use crate::report::{csv, Check, Report};
use crate::runner::{run_measurement_study, Scale};
use ir_core::SessionConfig;
use ir_stats::{Ecdf, Summary};
use ir_workload::{planetlab_study, Schedule};

/// Fig 1 acceptance band for the **mean** improvement (%) over
/// indirect-chosen transfers (the paper's headline is +49%).
pub const FIG1_MEAN_PCT: (f64, f64) = (25.0, 85.0);
/// Fig 1 acceptance band for the **median** improvement (%).
pub const FIG1_MEDIAN_PCT: (f64, f64) = (15.0, 70.0);
/// Fig 1 acceptance band for the probability mass in [0, 100] %.
pub const FIG1_BAND_PCT: (f64, f64) = (65.0, 95.0);
/// Fig 1 acceptance band for the penalty fraction (%).
pub const FIG1_PENALTY_PCT: (f64, f64) = (3.0, 25.0);

/// Fig 1 headline statistics for one seed.
#[derive(Debug, Clone, Copy)]
pub struct SeedStats {
    /// The seed.
    pub seed: u64,
    /// Mean improvement (%) over indirect-chosen transfers.
    pub mean_pct: f64,
    /// Median improvement (%).
    pub median_pct: f64,
    /// Mass in [0, 100] (%).
    pub band_pct: f64,
    /// Penalty fraction (%).
    pub penalty_pct: f64,
}

impl SeedStats {
    /// Whether this seed passes Fig 1's acceptance bands (the shared
    /// [`FIG1_MEAN_PCT`]…[`FIG1_PENALTY_PCT`] constants, also consulted
    /// by the faults experiment and integration tests).
    pub fn passes(&self) -> bool {
        (FIG1_MEAN_PCT.0..=FIG1_MEAN_PCT.1).contains(&self.mean_pct)
            && (FIG1_MEDIAN_PCT.0..=FIG1_MEDIAN_PCT.1).contains(&self.median_pct)
            && (FIG1_BAND_PCT.0..=FIG1_BAND_PCT.1).contains(&self.band_pct)
            && (FIG1_PENALTY_PCT.0..=FIG1_PENALTY_PCT.1).contains(&self.penalty_pct)
    }
}

/// Runs the sweep.
pub fn run(seeds: &[u64]) -> Vec<SeedStats> {
    seeds
        .iter()
        .map(|&seed| {
            let scenario = planetlab_study(seed);
            let data = run_measurement_study(
                &scenario,
                0,
                Schedule::measurement_study().spread(Scale::Quick.measurement_transfers()),
                SessionConfig::paper_defaults(),
            );
            let imps = data.indirect_improvements_pct();
            let s = Summary::of(&imps).expect("indirect transfers exist");
            let e = Ecdf::new(&imps);
            SeedStats {
                seed,
                mean_pct: s.mean,
                median_pct: s.median,
                band_pct: e.mass_in(0.0, 100.0) * 100.0,
                penalty_pct: e.below(0.0) * 100.0,
            }
        })
        .collect()
}

/// Default seed sweep.
pub const DEFAULT_SEEDS: &[u64] = &[1, 7, 42, 123, 777, 2007, 31337, 424242];

/// Builds the robustness report.
pub fn report(seeds: &[u64]) -> Report {
    let stats = run(seeds);
    let mut table = ir_stats::TextTable::new()
        .title("Fig 1 headline statistics per seed")
        .header([
            "seed",
            "mean %",
            "median %",
            "in [0,100] %",
            "penalties %",
            "passes",
        ]);
    let mut rows = Vec::new();
    for s in &stats {
        table.row([
            s.seed.to_string(),
            format!("{:+.1}", s.mean_pct),
            format!("{:+.1}", s.median_pct),
            format!("{:.1}", s.band_pct),
            format!("{:.1}", s.penalty_pct),
            if s.passes() {
                "yes".into()
            } else {
                "NO".to_string()
            },
        ]);
        rows.push(vec![
            s.seed.to_string(),
            format!("{:.3}", s.mean_pct),
            format!("{:.3}", s.median_pct),
            format!("{:.3}", s.band_pct),
            format!("{:.3}", s.penalty_pct),
            s.passes().to_string(),
        ]);
    }
    let pass_rate =
        stats.iter().filter(|s| s.passes()).count() as f64 / stats.len().max(1) as f64 * 100.0;

    let mut body = table.render();
    body.push_str(&format!(
        "\nseeds passing all Fig 1 bands: {pass_rate:.0}%\n"
    ));

    Report {
        id: "robustness",
        title: "Seed robustness of the Fig 1 shapes".into(),
        body,
        csv: vec![(
            "seeds".into(),
            csv(
                &[
                    "seed",
                    "mean_pct",
                    "median_pct",
                    "band_pct",
                    "penalty_pct",
                    "passes",
                ],
                &rows,
            ),
        )],
        checks: vec![Check::banded(
            "seeds passing all Fig 1 bands (%)",
            100.0,
            pass_rate,
            75.0,
            100.0,
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_on_two_seeds() {
        let stats = run(&[3, 4]);
        assert_eq!(stats.len(), 2);
        for s in &stats {
            assert!(s.mean_pct.is_finite());
            assert!(s.band_pct >= 0.0 && s.band_pct <= 100.0);
        }
    }
}
