//! Fig 2 — per-client improvement histograms.
//!
//! The paper shows a selection of per-client histograms and observes
//! that "the separate behaviors of the majority of the client nodes are
//! roughly similar to the cumulative distribution … most of the percent
//! improvement is somewhere between 0% and 100%, and peaks somewhere
//! near 50% (though not in all cases, as with France)".

use crate::report::{csv, Check, Report};
use crate::runner::MeasurementData;
use ir_simnet::topology::NodeId;
use ir_stats::{Ecdf, Histogram, Summary};
use std::collections::BTreeMap;

/// Clients the paper's Fig 2 highlights (any subset present in the data
/// is rendered).
pub const HIGHLIGHTED: &[&str] = &[
    "Australia 2",
    "Berlin",
    "Brazil",
    "France",
    "Israel",
    "Sweden",
];

/// Per-client improvement samples (indirect-chosen, percent).
fn per_client(data: &MeasurementData) -> BTreeMap<NodeId, Vec<f64>> {
    let mut map: BTreeMap<NodeId, Vec<f64>> = BTreeMap::new();
    for r in data.all_records() {
        if r.chose_indirect() {
            let v = r.improvement_pct();
            if v.is_finite() {
                map.entry(r.client).or_default().push(v);
            }
        }
    }
    map
}

/// Builds the Fig 2 report.
pub fn report(data: &MeasurementData) -> Report {
    let samples = per_client(data);
    let mut body = String::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut majority_in_band = 0usize;
    let mut clients_counted = 0usize;

    let mut stats_table = ir_stats::TextTable::new()
        .title("per-client improvement (indirect-chosen transfers)")
        .header(["client", "n", "mean%", "median%", "frac [0,100]%"]);

    for &client in &data.clients {
        let Some(vals) = samples.get(&client) else {
            continue;
        };
        if vals.len() < 3 {
            continue;
        }
        let s = Summary::of(vals).expect("non-empty");
        let e = Ecdf::new(vals);
        let frac = e.mass_in(0.0, 100.0) * 100.0;
        clients_counted += 1;
        if frac >= 50.0 {
            majority_in_band += 1;
        }
        stats_table.row([
            data.name(client).to_string(),
            vals.len().to_string(),
            format!("{:+.1}", s.mean),
            format!("{:+.1}", s.median),
            format!("{frac:.0}"),
        ]);
        rows.push(vec![
            data.name(client).to_string(),
            vals.len().to_string(),
            format!("{:.2}", s.mean),
            format!("{:.2}", s.median),
            format!("{:.2}", frac),
        ]);
    }
    body.push_str(&stats_table.render());
    body.push('\n');

    // ASCII histograms for the paper's highlighted clients.
    for name in HIGHLIGHTED {
        let Some(&client) = data.clients.iter().find(|&&c| data.name(c) == *name) else {
            continue;
        };
        if let Some(vals) = samples.get(&client) {
            if vals.len() >= 3 {
                body.push_str(&format!("\n{name} (n = {}):\n", vals.len()));
                body.push_str(&Histogram::of(-100.0, 200.0, 15, vals).render_ascii(32));
            }
        }
    }

    let majority_pct = if clients_counted == 0 {
        0.0
    } else {
        majority_in_band as f64 / clients_counted as f64 * 100.0
    };

    // Full per-client histogram series (long format) for plotting.
    let mut hist_rows: Vec<Vec<String>> = Vec::new();
    for (&client, vals) in &samples {
        if vals.len() < 3 {
            continue;
        }
        let h = Histogram::of(-100.0, 200.0, 30, vals);
        for (center, count) in h.series() {
            hist_rows.push(vec![
                data.name(client).to_string(),
                format!("{center}"),
                count.to_string(),
            ]);
        }
    }

    Report {
        id: "fig2",
        title: "Fig 2: per-client improvement histograms".into(),
        body,
        csv: vec![
            (
                "per_client".into(),
                csv(
                    &["client", "n", "mean_pct", "median_pct", "frac_0_100_pct"],
                    &rows,
                ),
            ),
            (
                "histograms".into(),
                csv(&["client", "bin_center_pct", "count"], &hist_rows),
            ),
        ],
        checks: vec![Check::banded(
            "clients with majority of mass in [0,100] (%)",
            100.0, // the paper: "the majority of the client nodes"
            majority_pct,
            60.0,
            100.0,
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_measurement_study;
    use ir_core::SessionConfig;
    use ir_workload::Schedule;

    #[test]
    fn fig2_renders_per_client_stats() {
        let sc = ir_workload::build(
            13,
            &ir_workload::roster::CLIENTS[..5],
            &ir_workload::roster::INTERMEDIATES[..4],
            &ir_workload::roster::SERVERS[..1],
            ir_workload::Calibration::default(),
            false,
        );
        let data = run_measurement_study(
            &sc,
            0,
            Schedule::measurement_study().truncated(8),
            SessionConfig::paper_defaults(),
        );
        let r = report(&data);
        assert!(r.render().contains("per-client improvement"));
        assert!(!r.csv[0].1.is_empty());
    }
}
