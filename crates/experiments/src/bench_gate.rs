//! `bench-gate` — the perf-regression runner behind
//! `cargo run -p ir-experiments --release -- bench-gate`.
//!
//! Executes reduced editions of the criterion `micro` and `figures`
//! benchmark groups with a plain median-of-samples timing loop (the
//! offline mini-criterion reports means to stdout; a gate needs machine
//! -readable medians), runs the **pinned Fig 1 study** (the exact study
//! `tests/determinism.rs` snapshots) under a telemetry handle to
//! collect the engine-counter split, and writes everything to
//! `BENCH_PR4.json`.
//!
//! The gate *fails* (non-zero exit through [`run`]'s `Err`) when:
//!
//! * the pinned study's boundary count moves — the determinism canary:
//!   timings drift with hardware, boundary counts must not; or
//! * the incremental engine stops paying for itself
//!   (`full_solves >= boundaries` on the pinned study).
//!
//! Timing numbers are recorded, not asserted: CI archives
//! `BENCH_PR4.json` so regressions are visible in artefact history
//! without flaky wall-clock thresholds. See DESIGN.md §10 for how to
//! read the file.
//!
//! The gate also runs the pinned **mini sweep** (`sweep::mini_plan`,
//! seed 42 — the same geometry as the pinned Fig 1 study) cold and then
//! warm against a throwaway cache, writing the wall-clock split and hit
//! rates to `BENCH_PR5.json` next to `BENCH_PR4.json`. It fails when
//! the warm pass is not served 100% from cache, when the warm pass
//! executes any study, or when warm artefact bytes diverge from a
//! cacheless run.
//!
//! The gate then times the path plane and writes `BENCH_PR6.json`:
//! per-policy `paths()` decision latency, the pinned tournament's
//! probe-path counts (the probe-count determinism canary), and an
//! incremental tournament sweep — cold with the roster minus one
//! policy, then warm with the full roster — failing unless the warm
//! pass executes *exactly* the added policy's study, the guarantee
//! that growing the roster never re-runs existing policies.
//!
//! Finally the gate times the partition-sharded engine on the megaflow
//! gate geometry (32,768 flows, 32 rack components) and writes
//! `BENCH_PR7.json`: median ns/boundary for the single-threaded
//! incremental engine vs `Sharded` at every available core, the speedup
//! ratio, the decomposition stats, and the pinned mini-megaflow
//! boundary canary. It fails when the canary moves, or when the sharded
//! engine is *slower* than incremental on a machine with ≥ 4 cores.
//!
//! Next, the gate soaks the event-driven relay daemon against its
//! thread-per-connection baseline on the soak gate geometry (64
//! concurrent racing clients over real loopback sockets, three runs
//! per mode) and writes `BENCH_PR9.json`: the median run's p99
//! accept-to-first-byte wait and goodput for each mode, plus the lost
//! transfer count. It fails when any transfer is lost, when the
//! first-byte spans go dark, or when the reactor's p99 regresses past
//! 2× the threaded baseline (+5 ms scheduler slack).
//!
//! Last, the gate runs the pinned striping sweep
//! ([`crate::striping::run`], seed 2007 Quick — the stale-prediction
//! geometry) and writes `BENCH_PR10.json`: the striped-over-raced
//! completion-time ratios on the penalty-tail (stale) and healthy
//! cells, the rebalancer's reassignment counts, and the
//! chunk-assignment canary (total chunks the direct path carried over
//! the whole grid — a pure function of the scheduler, pinned like the
//! boundary counts). It fails when striping loses any stale cell
//! (`worst ratio ≥ 1`), when the healthy-cell overhead exceeds the
//! report band, when no stale cell engaged the rebalancer, or when
//! the chunk-assignment canary moves.

use crate::runner::run_measurement_study_traced;
use crate::{fig1, table1};
use ir_core::SessionConfig;
use ir_simnet::events::EventQueue;
use ir_simnet::fairshare::{max_min_rates, reference_rates, AllocFlow};
use ir_simnet::time::SimTime;
use ir_telemetry::Telemetry;
use ir_workload::{build, roster, Calibration, Schedule};
use std::fmt::Write as _;
use std::hint::black_box;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Boundary count of the pinned Fig 1 study (seed 42, 4 clients × 4
/// relays × 1 server, spread 8 — identical to `tests/determinism.rs`).
/// This is a pure function of the seed; if it moves, the engine's
/// boundary schedule changed and the golden artefacts are suspect.
/// Re-pin only after `tests/golden/` has been deliberately regenerated.
pub const PINNED_FIG1_BOUNDARIES: u64 = 6_054;

/// One benchmark's result: median nanoseconds per operation.
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub group: &'static str,
    pub name: &'static str,
    pub median_ns: u64,
}

/// Engine-counter split of the pinned study, read back from telemetry
/// (`simnet_boundaries` / `simnet_recomputes` / `simnet_solve_skips`).
#[derive(Debug, Clone, Copy)]
pub struct GateStats {
    pub boundaries: u64,
    pub full_solves: u64,
    pub incremental_solves: u64,
}

/// Times `f`, returning the median ns/op over `samples` samples of
/// `iters` iterations each (one untimed warm-up call first).
fn median_ns(samples: usize, iters: u64, mut f: impl FnMut()) -> u64 {
    f();
    let mut per_iter: Vec<u64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            (t0.elapsed().as_nanos() / iters as u128) as u64
        })
        .collect();
    per_iter.sort_unstable();
    per_iter[per_iter.len() / 2]
}

/// The `micro` group fixture from `crates/bench/benches/micro.rs`: 32
/// flows over 16 links, sparse incidence, a few capped flows.
fn micro_fairshare_problem() -> (Vec<f64>, Vec<AllocFlow>) {
    let caps: Vec<f64> = (0..16).map(|i| 1e5 + (i as f64) * 3e4).collect();
    let flows: Vec<AllocFlow> = (0..32)
        .map(|i| AllocFlow {
            links: vec![i % 16, (i * 7 + 3) % 16],
            cap: if i % 5 == 0 { 5e4 } else { f64::INFINITY },
        })
        .collect();
    (caps, flows)
}

fn run_micro_group(out: &mut Vec<BenchResult>) {
    let (caps, flows) = micro_fairshare_problem();
    out.push(BenchResult {
        group: "micro",
        name: "max_min_rates_32f_16l",
        median_ns: median_ns(15, 200, || {
            black_box(max_min_rates(black_box(&caps), black_box(&flows)));
        }),
    });
    out.push(BenchResult {
        group: "micro",
        name: "reference_rates_32f_16l",
        median_ns: median_ns(15, 200, || {
            black_box(reference_rates(black_box(&caps), black_box(&flows)));
        }),
    });
    out.push(BenchResult {
        group: "micro",
        name: "event_queue_push_pop_1k",
        median_ns: median_ns(15, 20, || {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.push(SimTime::from_micros((i * 7919) % 65_536), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum += v;
            }
            black_box(sum);
        }),
    });
}

/// The pinned Fig 1 study — byte-for-byte the scenario
/// `tests/determinism.rs` snapshots into `tests/golden/`.
fn pinned_study(tel: Option<Arc<Telemetry>>) -> crate::runner::MeasurementData {
    let sc = build(
        42,
        &roster::CLIENTS[..4],
        &roster::INTERMEDIATES[..4],
        &roster::SERVERS[..1],
        Calibration::default(),
        false,
    );
    run_measurement_study_traced(
        &sc,
        0,
        Schedule::measurement_study().spread(8),
        SessionConfig::paper_defaults(),
        tel,
    )
}

fn run_figures_group(out: &mut Vec<BenchResult>) {
    let data = pinned_study(None);
    out.push(BenchResult {
        group: "figures",
        name: "fig1_report",
        median_ns: median_ns(9, 10, || {
            black_box(fig1::report(black_box(&data)));
        }),
    });
    out.push(BenchResult {
        group: "figures",
        name: "table1_report",
        median_ns: median_ns(9, 10, || {
            black_box(table1::report(black_box(&data)));
        }),
    });
    out.push(BenchResult {
        group: "figures",
        name: "measurement_study_pinned",
        median_ns: median_ns(3, 1, || {
            black_box(pinned_study(None));
        }),
    });
}

/// Runs the pinned study once under telemetry and reads back the
/// engine-counter split, aggregated across every `Network` the study
/// touched (clones share the registry handle).
fn gate_stats() -> GateStats {
    let tel = Arc::new(Telemetry::new());
    let data = pinned_study(Some(tel.clone()));
    assert!(
        data.all_records().count() > 0,
        "pinned study produced no records"
    );
    let snap = tel.metrics.snapshot();
    let get = |name: &str| snap.counter(name, &vec![]).unwrap_or(0);
    GateStats {
        boundaries: get("simnet_boundaries"),
        full_solves: get("simnet_recomputes"),
        incremental_solves: get("simnet_solve_skips"),
    }
}

/// Cold-vs-warm behaviour of the pinned mini sweep against a fresh
/// cache, plus byte-identity against a cacheless run.
#[derive(Debug, Clone, Copy)]
pub struct SweepStats {
    /// Artefacts in the mini plan.
    pub artefacts: u64,
    /// Studies the cold pass executed (must be < `artefacts`: the
    /// dedup the scheduler exists for).
    pub cold_studies_executed: u64,
    /// Studies the warm pass executed (must be 0).
    pub warm_studies_executed: u64,
    /// Cold-pass cache hit rate (fresh cache: 0).
    pub cold_hit_rate: f64,
    /// Warm-pass cache hit rate (must be 1).
    pub warm_hit_rate: f64,
    /// Cold-pass wall clock, milliseconds.
    pub cold_ms: u64,
    /// Warm-pass wall clock, milliseconds.
    pub warm_ms: u64,
    /// Warm artefact bundles byte-equal to a cacheless run.
    pub byte_identical: bool,
}

/// Runs the pinned mini sweep cold, warm, and cacheless in a throwaway
/// cache directory, returning the comparison.
fn sweep_stats() -> Result<SweepStats, String> {
    use crate::sweep;
    let dir = std::env::temp_dir().join(format!("ir-bench-gate-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = ir_artifact::ArtifactCache::open(&dir)
        .map_err(|e| format!("cannot open gate cache at {}: {e}", dir.display()))?;
    let sweep_err = |e: std::io::Error| format!("gate sweep failed: {e}");

    let t0 = Instant::now();
    let cold =
        sweep::run_sweep(sweep::mini_plan(42), Some(&cache), None, None).map_err(sweep_err)?;
    let cold_ms = t0.elapsed().as_millis() as u64;
    let t1 = Instant::now();
    let warm =
        sweep::run_sweep(sweep::mini_plan(42), Some(&cache), None, None).map_err(sweep_err)?;
    let warm_ms = t1.elapsed().as_millis() as u64;
    let cacheless = sweep::run_sweep(sweep::mini_plan(42), None, None, None).map_err(sweep_err)?;
    let _ = std::fs::remove_dir_all(&dir);

    let byte_identical = warm.artefacts.len() == cacheless.artefacts.len()
        && warm
            .artefacts
            .iter()
            .zip(cacheless.artefacts.iter())
            .all(|(w, c)| w.output == c.output);
    Ok(SweepStats {
        artefacts: cold.artefacts.len() as u64,
        cold_studies_executed: cold.studies_executed(),
        warm_studies_executed: warm.studies_executed(),
        cold_hit_rate: cold.hit_rate(),
        warm_hit_rate: warm.hit_rate(),
        cold_ms,
        warm_ms,
        byte_identical,
    })
}

fn render_sweep_json(s: SweepStats) -> String {
    format!(
        "{{\n  \"bench\": \"BENCH_PR5\",\n  \"sweep\": {{\n    \"artefacts\": {},\n    \
         \"cold_studies_executed\": {},\n    \"warm_studies_executed\": {},\n    \
         \"cold_hit_rate\": {:.4},\n    \"warm_hit_rate\": {:.4},\n    \"cold_ms\": {},\n    \
         \"warm_ms\": {},\n    \"byte_identical\": {}\n  }},\n  \"units\": \"wall_clock_ms\"\n}}\n",
        s.artefacts,
        s.cold_studies_executed,
        s.warm_studies_executed,
        s.cold_hit_rate,
        s.warm_hit_rate,
        s.cold_ms,
        s.warm_ms,
        s.byte_identical
    )
}

/// Total probe paths the pinned quick tournament (seed 11 — the exact
/// run `tests/determinism.rs` snapshots into
/// `tests/golden/tournament_cells.csv`) asks the network to pay,
/// summed over every policy × scenario cell. A pure function of the
/// seed: timings drift with hardware, probe counts must not. Re-pin
/// only after the tournament golden has been deliberately regenerated.
pub const PINNED_TOURNAMENT_PROBE_PATHS: u64 = 750;

/// Path-plane gate numbers: per-policy decision latency, the pinned
/// probe-count canary, and the incremental-sweep proof that adding a
/// policy re-runs only that policy's study.
#[derive(Debug, Clone)]
pub struct PolicyStats {
    /// `(policy, median ns per paths() decision)` on the star scenario.
    pub decision_ns: Vec<(&'static str, u64)>,
    /// `(policy, probe paths)` in the pinned quick tournament.
    pub probe_paths: Vec<(&'static str, u64)>,
    /// Policies in the cold subset plan (the full roster minus one).
    pub subset_policies: u64,
    /// Studies the cold subset pass executed.
    pub cold_studies_executed: u64,
    /// Studies the warm full-roster pass executed; must equal the
    /// number of policies added on top of the subset (one).
    pub warm_studies_executed: u64,
}

impl PolicyStats {
    pub fn observed_probe_paths(&self) -> u64 {
        self.probe_paths.iter().map(|&(_, n)| n).sum()
    }
}

/// Times every policy's `paths()` decision, counts the pinned
/// tournament's probe paths, and runs the incremental tournament sweep
/// (cold subset, warm full roster) in a throwaway cache.
fn policy_stats() -> Result<PolicyStats, String> {
    use crate::{sweep, tournament};
    use ir_policy::PathCtx;

    let sc = tournament::scenario("star", 42);
    let topo = sc.network.topology().clone();
    let mut decision_ns = Vec::new();
    for &policy in tournament::POLICIES {
        let mut sel = tournament::make_selector(policy, 42);
        let ctx = PathCtx {
            client: sc.clients[0],
            server: sc.server,
            relays: &sc.relays,
            topo: &topo,
            transfer_index: 0,
        };
        decision_ns.push((
            policy,
            median_ns(15, 50, || {
                black_box(sel.paths(black_box(&ctx)));
            }),
        ));
    }

    let cells = crate::tournament::run(11, crate::Scale::Quick);
    let probe_paths: Vec<(&'static str, u64)> = tournament::POLICIES
        .iter()
        .map(|&p| {
            let n: f64 = cells
                .iter()
                .filter(|c| c.policy == p)
                .map(|c| c.probe_paths_per_transfer * c.transfers as f64)
                .sum();
            (p, n.round() as u64)
        })
        .collect();

    let dir = std::env::temp_dir().join(format!("ir-bench-gate-policy-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = ir_artifact::ArtifactCache::open(&dir)
        .map_err(|e| format!("cannot open gate cache at {}: {e}", dir.display()))?;
    let sweep_err = |e: std::io::Error| format!("gate tournament sweep failed: {e}");
    let subset = &tournament::POLICIES[..tournament::POLICIES.len() - 1];
    let cold = sweep::run_sweep(
        sweep::tournament_plan(42, crate::Scale::Quick, subset),
        Some(&cache),
        None,
        None,
    )
    .map_err(sweep_err)?;
    let warm = sweep::run_sweep(
        sweep::tournament_plan(42, crate::Scale::Quick, tournament::POLICIES),
        Some(&cache),
        None,
        None,
    )
    .map_err(sweep_err)?;
    let _ = std::fs::remove_dir_all(&dir);

    Ok(PolicyStats {
        decision_ns,
        probe_paths,
        subset_policies: subset.len() as u64,
        cold_studies_executed: cold.studies_executed(),
        warm_studies_executed: warm.studies_executed(),
    })
}

fn render_policy_json(s: &PolicyStats) -> String {
    let mut j = String::from("{\n  \"bench\": \"BENCH_PR6\",\n  \"policies\": {\n");
    for (i, (policy, ns)) in s.decision_ns.iter().enumerate() {
        let probe = s
            .probe_paths
            .iter()
            .find(|(p, _)| p == policy)
            .map_or(0, |&(_, n)| n);
        let comma = if i + 1 < s.decision_ns.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    \"{policy}\": {{ \"paths_ns\": {ns}, \"probe_paths\": {probe} }}{comma}"
        );
    }
    let _ = writeln!(
        j,
        "  }},\n  \"units\": \"median_ns_per_decision\",\n  \"incremental_sweep\": {{\n    \
         \"subset_policies\": {},\n    \"cold_studies_executed\": {},\n    \
         \"warm_studies_executed\": {}\n  }},",
        s.subset_policies, s.cold_studies_executed, s.warm_studies_executed
    );
    let _ = writeln!(
        j,
        "  \"canary\": {{\n    \"pinned_probe_paths\": {PINNED_TOURNAMENT_PROBE_PATHS},\n    \
         \"observed_probe_paths\": {}\n  }}\n}}",
        s.observed_probe_paths()
    );
    j
}

/// Boundary count of the mini megaflow geometry
/// ([`crate::megaflow::MegaflowConfig::mini`], seed 2007 — the sweep's
/// quick-scale study). A pure function of the config and seed; if it
/// moves, the engine's boundary schedule changed. Re-pin only after a
/// deliberate engine-semantics change.
pub const PINNED_MEGAFLOW_MINI_BOUNDARIES: u64 = 18;

/// Megaflow gate numbers: the sharded engine's ns/boundary at 1 vs N
/// threads on the gate geometry, the decomposition stats, and the
/// pinned mini canary observation.
#[derive(Debug, Clone, Copy)]
pub struct MegaflowStats {
    /// Concurrent transfers in the gate geometry.
    pub flows: u64,
    /// Roster size of the gate geometry.
    pub nodes: u64,
    /// Solve boundaries the gate run crossed.
    pub boundaries: u64,
    /// Sum over solves of the component count.
    pub component_solves: u64,
    /// Distinct completion instants (batched rack finishes).
    pub completion_batches: u64,
    /// Boundary count of the pinned mini geometry (the canary).
    pub mini_boundaries: u64,
    /// Worker threads the sharded timing used.
    pub threads: u64,
    /// Median ns per boundary, single-threaded incremental engine.
    pub incremental_ns_per_boundary: u64,
    /// Median ns per boundary, `Sharded { threads }`.
    pub sharded_ns_per_boundary: u64,
}

impl MegaflowStats {
    /// Incremental-over-sharded wall-clock ratio (> 1 ⇒ sharding pays).
    pub fn speedup(&self) -> f64 {
        self.incremental_ns_per_boundary as f64 / self.sharded_ns_per_boundary.max(1) as f64
    }
}

/// Runs the mini canary, then times the gate geometry under the
/// incremental and sharded engines (`samples` timed runs each).
fn megaflow_stats(samples: usize) -> MegaflowStats {
    use crate::megaflow::{self, MegaflowConfig};
    use ir_simnet::sim::EngineMode;

    let mini = megaflow::run(2007, &MegaflowConfig::mini(), EngineMode::Incremental, None);
    let cfg = MegaflowConfig::gate();
    let base = megaflow::run(2007, &cfg, EngineMode::Incremental, None);
    let threads = crate::runner::effective_worker_threads(usize::MAX);
    let time_ns = |engine: EngineMode| {
        median_ns(samples, 1, || {
            black_box(megaflow::run(2007, &cfg, engine, None));
        })
    };
    let inc_ns = time_ns(EngineMode::Incremental);
    let sh_ns = time_ns(EngineMode::Sharded { threads });
    let per_boundary = |total: u64| total / base.boundaries.max(1);
    MegaflowStats {
        flows: base.flows_started,
        nodes: base.nodes,
        boundaries: base.boundaries,
        component_solves: base.component_solves,
        completion_batches: base.completion_batches,
        mini_boundaries: mini.boundaries,
        threads: threads as u64,
        incremental_ns_per_boundary: per_boundary(inc_ns),
        sharded_ns_per_boundary: per_boundary(sh_ns),
    }
}

fn render_megaflow_json(s: &MegaflowStats) -> String {
    format!(
        "{{\n  \"bench\": \"BENCH_PR7\",\n  \"megaflow\": {{\n    \"flows\": {},\n    \
         \"nodes\": {},\n    \"boundaries\": {},\n    \"component_solves\": {},\n    \
         \"completion_batches\": {},\n    \"threads\": {},\n    \
         \"incremental_ns_per_boundary\": {},\n    \"sharded_ns_per_boundary\": {},\n    \
         \"speedup\": {:.3}\n  }},\n  \"units\": \"median_ns_per_boundary\",\n  \
         \"canary\": {{\n    \"pinned_megaflow_mini_boundaries\": \
         {PINNED_MEGAFLOW_MINI_BOUNDARIES},\n    \"observed_mini_boundaries\": {}\n  }}\n}}\n",
        s.flows,
        s.nodes,
        s.boundaries,
        s.component_solves,
        s.completion_batches,
        s.threads,
        s.incremental_ns_per_boundary,
        s.sharded_ns_per_boundary,
        s.speedup(),
        s.mini_boundaries
    )
}

/// Soak gate numbers: accept-to-first-byte p99 and goodput for the
/// event-driven reactor vs the thread-per-connection baseline on the
/// gate geometry ([`crate::soak::SoakConfig::gate`]), plus the lost
/// transfer count summed over every run of both modes.
#[derive(Debug, Clone, Copy)]
pub struct SoakGateStats {
    /// Concurrent clients in the gate geometry.
    pub clients: u64,
    /// Timed runs per mode (median reported).
    pub samples: u64,
    /// Median-run p99 accept-to-first-byte, event reactor, µs.
    pub event_p99_us: u64,
    /// Median-run p99 accept-to-first-byte, threaded baseline, µs.
    pub threaded_p99_us: u64,
    /// Median-run goodput, event reactor, bytes/s.
    pub event_goodput_bps: u64,
    /// Median-run goodput, threaded baseline, bytes/s.
    pub threaded_goodput_bps: u64,
    /// Transfers lost across **all** runs of both modes.
    pub lost: u64,
}

impl SoakGateStats {
    /// Event-over-threaded p99 ratio (< 1 ⇒ the reactor's accept tail
    /// beats the baseline's).
    pub fn p99_ratio(&self) -> f64 {
        self.event_p99_us as f64 / self.threaded_p99_us.max(1) as f64
    }
}

/// Runs the soak gate geometry `samples` times per relay mode and
/// reports the median run (by p99 first-byte wait) of each.
fn soak_gate_stats(samples: usize) -> SoakGateStats {
    use crate::soak::{self, SoakConfig};
    use ir_relay::RelayMode;

    let cfg = SoakConfig::gate();
    let mut lost = 0u64;
    let mut median_run = |mode: RelayMode| {
        let mut runs: Vec<soak::SoakResult> =
            (0..samples.max(1)).map(|_| soak::run(&cfg, mode)).collect();
        lost += runs.iter().map(|r| r.lost).sum::<u64>();
        runs.sort_by_key(|r| r.p99_first_byte_us);
        runs.swap_remove(runs.len() / 2)
    };
    let event = median_run(RelayMode::Event {
        workers: cfg.workers as usize,
    });
    let threaded = median_run(RelayMode::Threaded);
    SoakGateStats {
        clients: cfg.clients as u64,
        samples: samples as u64,
        event_p99_us: event.p99_first_byte_us,
        threaded_p99_us: threaded.p99_first_byte_us,
        event_goodput_bps: event.goodput_bps,
        threaded_goodput_bps: threaded.goodput_bps,
        lost,
    }
}

fn render_soak_json(s: &SoakGateStats) -> String {
    format!(
        "{{\n  \"bench\": \"BENCH_PR9\",\n  \"soak\": {{\n    \"clients\": {},\n    \
         \"samples\": {},\n    \"event_p99_first_byte_us\": {},\n    \
         \"threaded_p99_first_byte_us\": {},\n    \"event_goodput_bps\": {},\n    \
         \"threaded_goodput_bps\": {},\n    \"p99_ratio\": {:.3},\n    \"lost\": {}\n  }},\n  \
         \"units\": \"median_run_p99_us\"\n}}\n",
        s.clients,
        s.samples,
        s.event_p99_us,
        s.threaded_p99_us,
        s.event_goodput_bps,
        s.threaded_goodput_bps,
        s.p99_ratio(),
        s.lost
    )
}

/// Total chunks the direct path carries across the pinned striping
/// sweep (seed 2007, Quick). A pure function of the chunk scheduler —
/// EWMA seeds, drift thresholds, claim order — so any drift here means
/// the striper's assignment sequence changed and the golden CSV is
/// suspect. Re-pin only after `tests/golden/striping_cells.csv` has
/// been deliberately regenerated.
pub const PINNED_STRIPE_DIRECT_CHUNKS: u64 = 33;

/// Striping gate numbers over the pinned sweep: penalty-tail and
/// healthy completion ratios plus the rebalancer's activity and the
/// chunk-assignment canary.
#[derive(Debug, Clone, Copy)]
pub struct StripeGateStats {
    /// Cells in the pinned sweep.
    pub cells: u64,
    /// Stale-prediction (penalty-tail) cells among them.
    pub stale_cells: u64,
    /// Worst (highest) striped/raced ratio over the stale cells —
    /// must stay < 1: striping strictly wins the penalty tail.
    pub worst_stale_ratio: f64,
    /// Best (lowest) striped/raced ratio over the stale cells.
    pub best_stale_ratio: f64,
    /// Worst striped/raced ratio over the healthy (no-fault) cells —
    /// the straggler-tail overhead bound.
    pub worst_healthy_ratio: f64,
    /// Chunk reassignments summed over the stale cells.
    pub stale_reassignments: u64,
    /// Path deaths summed over every cell.
    pub deaths: u64,
    /// Chunks the direct path carried over the whole grid (canary).
    pub direct_chunks: u64,
}

/// Runs the pinned striping sweep and folds it into gate numbers.
fn stripe_gate_stats() -> StripeGateStats {
    let cells = crate::striping::run(2007, crate::runner::Scale::Quick);
    let stale: Vec<_> = cells.iter().filter(|c| c.stale).collect();
    let healthy: Vec<_> = cells.iter().filter(|c| !c.stale).collect();
    StripeGateStats {
        cells: cells.len() as u64,
        stale_cells: stale.len() as u64,
        worst_stale_ratio: stale
            .iter()
            .map(|c| c.ratio)
            .fold(f64::NEG_INFINITY, f64::max),
        best_stale_ratio: stale.iter().map(|c| c.ratio).fold(f64::INFINITY, f64::min),
        worst_healthy_ratio: healthy
            .iter()
            .map(|c| c.ratio)
            .fold(f64::NEG_INFINITY, f64::max),
        stale_reassignments: stale.iter().map(|c| c.reassignments as u64).sum(),
        deaths: cells.iter().map(|c| c.deaths as u64).sum(),
        direct_chunks: cells.iter().map(|c| c.direct_chunks).sum(),
    }
}

fn render_stripe_json(s: &StripeGateStats) -> String {
    format!(
        "{{\n  \"bench\": \"BENCH_PR10\",\n  \"striping\": {{\n    \"cells\": {},\n    \
         \"stale_cells\": {},\n    \"worst_stale_ratio\": {:.4},\n    \
         \"best_stale_ratio\": {:.4},\n    \"worst_healthy_ratio\": {:.4},\n    \
         \"stale_reassignments\": {},\n    \"deaths\": {}\n  }},\n  \"canary\": {{\n    \
         \"pinned_direct_chunks\": {PINNED_STRIPE_DIRECT_CHUNKS},\n    \
         \"observed_direct_chunks\": {}\n  }},\n  \
         \"units\": \"striped_over_raced_completion_ratio\"\n}}\n",
        s.cells,
        s.stale_cells,
        s.worst_stale_ratio,
        s.best_stale_ratio,
        s.worst_healthy_ratio,
        s.stale_reassignments,
        s.deaths,
        s.direct_chunks
    )
}

fn render_json(results: &[BenchResult], stats: GateStats) -> String {
    let mut s = String::from("{\n  \"bench\": \"BENCH_PR4\",\n  \"groups\": {\n");
    for (gi, group) in ["micro", "figures"].iter().enumerate() {
        let _ = writeln!(s, "    \"{group}\": {{");
        let members: Vec<&BenchResult> = results.iter().filter(|r| r.group == *group).collect();
        for (i, r) in members.iter().enumerate() {
            let comma = if i + 1 < members.len() { "," } else { "" };
            let _ = writeln!(s, "      \"{}\": {}{comma}", r.name, r.median_ns);
        }
        let comma = if gi == 0 { "," } else { "" };
        let _ = writeln!(s, "    }}{comma}");
    }
    let _ = writeln!(
        s,
        "  }},\n  \"units\": \"median_ns_per_op\",\n  \"engine_stats\": {{\n    \
         \"boundaries\": {},\n    \"full_solves\": {},\n    \"incremental_solves\": {}\n  }},",
        stats.boundaries, stats.full_solves, stats.incremental_solves
    );
    let _ = writeln!(
        s,
        "  \"canary\": {{\n    \"pinned_fig1_boundaries\": {PINNED_FIG1_BOUNDARIES},\n    \
         \"observed_boundaries\": {}\n  }}\n}}",
        stats.boundaries
    );
    s
}

/// Runs the full gate and writes `out` (normally `BENCH_PR4.json`).
/// Returns `Err` with a diagnostic when a gate condition fails — the
/// JSON is still written first so the failing run's numbers are
/// inspectable.
pub fn run(out: &Path) -> Result<GateStats, String> {
    eprintln!("bench-gate: timing micro group...");
    let mut results = Vec::new();
    run_micro_group(&mut results);
    eprintln!("bench-gate: timing figures group...");
    run_figures_group(&mut results);
    eprintln!("bench-gate: collecting engine stats on the pinned Fig 1 study...");
    let stats = gate_stats();

    let json = render_json(&results, stats);
    std::fs::write(out, &json).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    for r in &results {
        eprintln!(
            "bench-gate: {:>8} ns/op  {}/{}",
            r.median_ns, r.group, r.name
        );
    }
    eprintln!(
        "bench-gate: boundaries {} full_solves {} incremental_solves {}",
        stats.boundaries, stats.full_solves, stats.incremental_solves
    );
    eprintln!("bench-gate: wrote {}", out.display());

    eprintln!("bench-gate: timing the pinned mini sweep cold vs warm...");
    let sweep = sweep_stats()?;
    let out5 = out.with_file_name("BENCH_PR5.json");
    std::fs::write(&out5, render_sweep_json(sweep))
        .map_err(|e| format!("cannot write {}: {e}", out5.display()))?;
    eprintln!(
        "bench-gate: sweep cold {}ms (hit rate {:.0}%) warm {}ms (hit rate {:.0}%), \
         {}/{} studies executed warm/cold",
        sweep.cold_ms,
        sweep.cold_hit_rate * 100.0,
        sweep.warm_ms,
        sweep.warm_hit_rate * 100.0,
        sweep.warm_studies_executed,
        sweep.cold_studies_executed,
    );
    eprintln!("bench-gate: wrote {}", out5.display());

    eprintln!("bench-gate: timing policy decisions and the incremental tournament sweep...");
    let policy = policy_stats()?;
    let out6 = out.with_file_name("BENCH_PR6.json");
    std::fs::write(&out6, render_policy_json(&policy))
        .map_err(|e| format!("cannot write {}: {e}", out6.display()))?;
    for (p, ns) in &policy.decision_ns {
        eprintln!("bench-gate: {ns:>8} ns/decision  policy/{p}");
    }
    eprintln!(
        "bench-gate: tournament probe paths {} (pinned {}), warm roster-grow pass executed \
         {} studies over a {}-study cold subset",
        policy.observed_probe_paths(),
        PINNED_TOURNAMENT_PROBE_PATHS,
        policy.warm_studies_executed,
        policy.cold_studies_executed,
    );
    eprintln!("bench-gate: wrote {}", out6.display());

    eprintln!("bench-gate: timing the megaflow study, incremental vs sharded...");
    let mega = megaflow_stats(5);
    let out7 = out.with_file_name("BENCH_PR7.json");
    std::fs::write(&out7, render_megaflow_json(&mega))
        .map_err(|e| format!("cannot write {}: {e}", out7.display()))?;
    eprintln!(
        "bench-gate: megaflow {} flows / {} boundaries — {} ns/boundary incremental, \
         {} ns/boundary sharded×{} (speedup {:.2}×)",
        mega.flows,
        mega.boundaries,
        mega.incremental_ns_per_boundary,
        mega.sharded_ns_per_boundary,
        mega.threads,
        mega.speedup(),
    );
    eprintln!("bench-gate: wrote {}", out7.display());

    eprintln!("bench-gate: soaking the relay, event reactor vs threaded baseline...");
    let soak = soak_gate_stats(3);
    let out9 = out.with_file_name("BENCH_PR9.json");
    std::fs::write(&out9, render_soak_json(&soak))
        .map_err(|e| format!("cannot write {}: {e}", out9.display()))?;
    eprintln!(
        "bench-gate: soak {} clients — p99 first byte {}µs event vs {}µs threaded \
         (ratio {:.2}), goodput {} vs {} B/s, {} lost",
        soak.clients,
        soak.event_p99_us,
        soak.threaded_p99_us,
        soak.p99_ratio(),
        soak.event_goodput_bps,
        soak.threaded_goodput_bps,
        soak.lost,
    );
    eprintln!("bench-gate: wrote {}", out9.display());

    eprintln!("bench-gate: running the pinned striping sweep, striped vs raced...");
    let stripe = stripe_gate_stats();
    let out10 = out.with_file_name("BENCH_PR10.json");
    std::fs::write(&out10, render_stripe_json(&stripe))
        .map_err(|e| format!("cannot write {}: {e}", out10.display()))?;
    eprintln!(
        "bench-gate: striping {} cells ({} stale) — stale ratio worst {:.3} best {:.3}, \
         healthy worst {:.3}, {} stale reassignments, direct chunks {} (pinned {})",
        stripe.cells,
        stripe.stale_cells,
        stripe.worst_stale_ratio,
        stripe.best_stale_ratio,
        stripe.worst_healthy_ratio,
        stripe.stale_reassignments,
        stripe.direct_chunks,
        PINNED_STRIPE_DIRECT_CHUNKS,
    );
    eprintln!("bench-gate: wrote {}", out10.display());

    if stats.boundaries != PINNED_FIG1_BOUNDARIES {
        return Err(format!(
            "determinism canary: pinned Fig 1 study ran {} boundaries, expected {} — \
             the boundary schedule moved; investigate before re-pinning",
            stats.boundaries, PINNED_FIG1_BOUNDARIES
        ));
    }
    if stats.full_solves >= stats.boundaries {
        return Err(format!(
            "incremental engine never skipped a solve: {} full solves over {} boundaries",
            stats.full_solves, stats.boundaries
        ));
    }
    if sweep.cold_studies_executed >= sweep.artefacts {
        return Err(format!(
            "sweep dedup broken: cold pass executed {} studies for {} artefacts",
            sweep.cold_studies_executed, sweep.artefacts
        ));
    }
    if sweep.warm_studies_executed != 0 || sweep.warm_hit_rate < 1.0 {
        return Err(format!(
            "warm sweep not fully served from cache: {} studies executed, hit rate {:.2}",
            sweep.warm_studies_executed, sweep.warm_hit_rate
        ));
    }
    if !sweep.byte_identical {
        return Err("warm sweep artefact bytes diverge from a cacheless run".into());
    }
    if policy.observed_probe_paths() != PINNED_TOURNAMENT_PROBE_PATHS {
        return Err(format!(
            "probe-count canary: pinned tournament probed {} paths, expected {} — a policy's \
             decision sequence moved; investigate before re-pinning",
            policy.observed_probe_paths(),
            PINNED_TOURNAMENT_PROBE_PATHS
        ));
    }
    if policy.cold_studies_executed != policy.subset_policies {
        return Err(format!(
            "tournament cold subset executed {} studies for {} policies",
            policy.cold_studies_executed, policy.subset_policies
        ));
    }
    let added = crate::tournament::POLICIES.len() as u64 - policy.subset_policies;
    if policy.warm_studies_executed != added {
        return Err(format!(
            "adding {added} policy re-ran {} tournament studies — per-policy fingerprints no \
             longer isolate the roster",
            policy.warm_studies_executed
        ));
    }
    if mega.mini_boundaries != PINNED_MEGAFLOW_MINI_BOUNDARIES {
        return Err(format!(
            "megaflow canary: mini geometry ran {} boundaries, expected {} — the engine's \
             boundary schedule moved; investigate before re-pinning",
            mega.mini_boundaries, PINNED_MEGAFLOW_MINI_BOUNDARIES
        ));
    }
    if mega.threads >= 4 && mega.speedup() < 1.0 {
        return Err(format!(
            "sharded engine slower than incremental at {} threads: {} vs {} ns/boundary \
             (speedup {:.2}×)",
            mega.threads,
            mega.sharded_ns_per_boundary,
            mega.incremental_ns_per_boundary,
            mega.speedup()
        ));
    }
    if soak.lost != 0 {
        return Err(format!(
            "soak gate lost {} transfers across {} runs of {} clients — the relay dropped \
             connections under load",
            soak.lost,
            soak.samples * 2,
            soak.clients
        ));
    }
    if soak.event_p99_us == 0 || soak.threaded_p99_us == 0 {
        return Err(format!(
            "soak gate recorded no first-byte spans (event {}µs, threaded {}µs) — the relay's \
             accept timing instrumentation went dark",
            soak.event_p99_us, soak.threaded_p99_us
        ));
    }
    // The reactor's accept tail must stay within 2× of the baseline's
    // (plus 5 ms of scheduler slack: at gate scale both tails are a
    // few ms, and one preemption on a loaded box should not fail CI).
    if soak.event_p99_us > 2 * soak.threaded_p99_us + 5_000 {
        return Err(format!(
            "event-driven relay's p99 accept-to-first-byte regressed past the threaded \
             baseline: {}µs vs {}µs (ratio {:.2}, allowed 2.0× + 5ms)",
            soak.event_p99_us,
            soak.threaded_p99_us,
            soak.p99_ratio()
        ));
    }
    if stripe.worst_stale_ratio >= 1.0 {
        return Err(format!(
            "striping lost a penalty-tail cell: worst stale striped/raced ratio {:.3} — the \
             rebalancer no longer beats the stale single-path prediction",
            stripe.worst_stale_ratio
        ));
    }
    if stripe.worst_healthy_ratio > 1.1 {
        return Err(format!(
            "striping overhead on healthy cells regressed: worst ratio {:.3} (allowed 1.10) — \
             the straggler tail outgrew its budget",
            stripe.worst_healthy_ratio
        ));
    }
    if stripe.stale_reassignments == 0 {
        return Err(
            "no stale cell engaged the rebalancer — stale wins are coming from somewhere else; \
             the drift/stall machinery went dark"
                .into(),
        );
    }
    if stripe.direct_chunks != PINNED_STRIPE_DIRECT_CHUNKS {
        return Err(format!(
            "chunk-assignment canary: pinned striping sweep gave the direct path {} chunks, \
             expected {} — the scheduler's assignment sequence moved; investigate before \
             re-pinning",
            stripe.direct_chunks, PINNED_STRIPE_DIRECT_CHUNKS
        ));
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The canary itself, as a test: the pinned study's boundary count
    /// is a pure function of the seed and must match the constant the
    /// gate enforces, and the incremental engine must be doing fewer
    /// full solves than boundary steps on it.
    #[test]
    fn pinned_study_boundary_count_and_solve_split() {
        let stats = gate_stats();
        assert_eq!(stats.boundaries, PINNED_FIG1_BOUNDARIES);
        assert!(
            stats.full_solves < stats.boundaries,
            "no solve ever skipped: {stats:?}"
        );
        // Idle boundaries (no active flows) neither solve nor skip, so
        // the split never exceeds the boundary count.
        assert!(stats.full_solves + stats.incremental_solves <= stats.boundaries);
    }

    /// The PR5 gate conditions, as a test: the cold mini sweep dedups
    /// its shared study, the warm pass is 100% cache-served with zero
    /// study executions, and warm bytes match a cacheless run.
    #[test]
    fn sweep_gate_conditions_hold() {
        let s = sweep_stats().unwrap();
        assert!(s.cold_studies_executed < s.artefacts, "{s:?}");
        assert_eq!(s.warm_studies_executed, 0, "{s:?}");
        assert!((s.warm_hit_rate - 1.0).abs() < 1e-9, "{s:?}");
        assert!(s.byte_identical, "{s:?}");
        let j = render_sweep_json(s);
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(j.contains("\"warm_hit_rate\": 1.0000"), "{j}");
    }

    /// The PR6 gate conditions, as a test: the pinned tournament's
    /// probe count matches the canary, the cold subset sweep executes
    /// one study per policy, and growing the roster by one policy
    /// executes exactly one warm study.
    #[test]
    fn policy_gate_conditions_hold() {
        let s = policy_stats().unwrap();
        assert_eq!(
            s.observed_probe_paths(),
            PINNED_TOURNAMENT_PROBE_PATHS,
            "{s:?}"
        );
        assert_eq!(s.cold_studies_executed, s.subset_policies, "{s:?}");
        let added = crate::tournament::POLICIES.len() as u64 - s.subset_policies;
        assert_eq!(s.warm_studies_executed, added, "{s:?}");
        assert_eq!(s.decision_ns.len(), crate::tournament::POLICIES.len());
        let j = render_policy_json(&s);
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(j.contains("\"k-shortest\""), "{j}");
        assert!(j.contains("\"pinned_probe_paths\": 750"), "{j}");
    }

    /// The PR7 canary, as a test: the mini megaflow geometry's boundary
    /// count matches the pinned constant (timing conditions are
    /// release-only, so the test checks structure, not the ratio).
    #[test]
    fn megaflow_gate_canary_holds() {
        use crate::megaflow::{self, MegaflowConfig};
        use ir_simnet::sim::EngineMode;
        let mini = megaflow::run(2007, &MegaflowConfig::mini(), EngineMode::Incremental, None);
        assert_eq!(mini.boundaries, PINNED_MEGAFLOW_MINI_BOUNDARIES);
        assert_eq!(mini.flows_completed, MegaflowConfig::mini().total_flows());
    }

    #[test]
    fn megaflow_json_is_well_formed_enough() {
        let s = MegaflowStats {
            flows: 51_200,
            nodes: 2_113,
            boundaries: 130,
            component_solves: 4_000,
            completion_batches: 64,
            mini_boundaries: PINNED_MEGAFLOW_MINI_BOUNDARIES,
            threads: 8,
            incremental_ns_per_boundary: 2_000_000,
            sharded_ns_per_boundary: 500_000,
        };
        assert!((s.speedup() - 4.0).abs() < 1e-9);
        let j = render_megaflow_json(&s);
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(j.contains("\"speedup\": 4.000"), "{j}");
        assert!(j.contains("\"pinned_megaflow_mini_boundaries\""), "{j}");
    }

    /// The PR9 gate arithmetic and JSON, on synthetic numbers (a real
    /// soak run is timed in release by the gate itself; the structural
    /// run lives in `crate::soak`'s tests).
    #[test]
    fn soak_json_is_well_formed_enough() {
        let s = SoakGateStats {
            clients: 64,
            samples: 3,
            event_p99_us: 4_200,
            threaded_p99_us: 2_100,
            event_goodput_bps: 1_500_000,
            threaded_goodput_bps: 1_400_000,
            lost: 0,
        };
        assert!((s.p99_ratio() - 2.0).abs() < 1e-9);
        // Exactly at the allowed envelope: 2× + 5ms slack admits it.
        assert!(s.event_p99_us <= 2 * s.threaded_p99_us + 5_000);
        let j = render_soak_json(&s);
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(j.contains("\"bench\": \"BENCH_PR9\""), "{j}");
        assert!(j.contains("\"p99_ratio\": 2.000"), "{j}");
        assert!(j.contains("\"lost\": 0"), "{j}");
    }

    /// The PR10 gate conditions, on the real pinned sweep (it is pure
    /// simulation, cheap enough to run in debug): the penalty tail is
    /// a strict striping win, healthy overhead stays in band, the
    /// rebalancer engages, and the chunk-assignment canary holds.
    #[test]
    fn stripe_gate_conditions_hold() {
        let s = stripe_gate_stats();
        assert_eq!(s.cells, 12);
        assert_eq!(s.stale_cells, 4);
        assert!(s.worst_stale_ratio < 1.0, "{s:?}");
        assert!(s.worst_healthy_ratio <= 1.1, "{s:?}");
        assert!(s.stale_reassignments > 0, "{s:?}");
        assert_eq!(s.direct_chunks, PINNED_STRIPE_DIRECT_CHUNKS, "{s:?}");
    }

    #[test]
    fn stripe_json_is_well_formed_enough() {
        let s = StripeGateStats {
            cells: 12,
            stale_cells: 4,
            worst_stale_ratio: 0.306,
            best_stale_ratio: 0.040,
            worst_healthy_ratio: 0.963,
            stale_reassignments: 6,
            deaths: 0,
            direct_chunks: PINNED_STRIPE_DIRECT_CHUNKS,
        };
        let j = render_stripe_json(&s);
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(j.contains("\"bench\": \"BENCH_PR10\""), "{j}");
        assert!(j.contains("\"worst_stale_ratio\": 0.3060"), "{j}");
        assert!(j.contains("\"pinned_direct_chunks\""), "{j}");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let results = vec![
            BenchResult {
                group: "micro",
                name: "a",
                median_ns: 1,
            },
            BenchResult {
                group: "figures",
                name: "b",
                median_ns: 2,
            },
        ];
        let stats = GateStats {
            boundaries: 10,
            full_solves: 6,
            incremental_solves: 3,
        };
        let j = render_json(&results, stats);
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(j.contains("\"max_min_rates") || j.contains("\"a\": 1"));
        assert!(j.contains("\"boundaries\": 10"));
        assert!(j.contains("\"pinned_fig1_boundaries\""));
    }
}
