//! Fault-plane experiment: availability and goodput under overlay
//! outages and relay churn, with session failover enabled.
//!
//! The paper's measurements assume every intermediate stays reachable
//! for the whole study; this extension asks what indirect routing buys
//! when they do not. A seeded [`FaultPlan`] takes overlay uplinks down,
//! browns them out, and churns relay nodes, while the session layer's
//! retry/backoff + mid-transfer failover tries to finish every file
//! anyway. The sweep crosses fault pressure (link MTBF) with
//! random-set size `k` (§4's selection knob): more candidate relays
//! should translate into more surviving escape routes.
//!
//! Per cell we report **availability** (transfers that completed
//! before the session horizon), mean mid-transfer failovers, mean
//! stalled time, and goodput relative to the zero-fault cell at the
//! same `k`. The zero-fault row doubles as a regression anchor: its
//! improvement statistics are checked against the shared Fig 1 bands
//! ([`crate::robustness::FIG1_MEAN_PCT`]).

use crate::report::{csv, Check, Report};
use crate::robustness::FIG1_MEAN_PCT;
use crate::runner::{run_task_with, Scale};
use ir_core::{FailoverConfig, RandomSet, SessionConfig, TransferRecord};
use ir_simnet::faults::{FaultPlan, FaultSpec};
use ir_simnet::time::SimDuration;
use ir_stats::Summary;
use ir_workload::{build, overlay_fault_plan, roster, Calibration, Scenario, Schedule};

/// Link MTBF values swept (seconds); 0 means "no faults" and anchors
/// the goodput ratios.
pub const MTBF_SECS: &[u64] = &[0, 900, 300];

/// Random-set sizes swept (the §4 selection knob).
pub const KS: &[usize] = &[1, 3, 6];

/// The fault pressure applied at a given link MTBF: outages average
/// two minutes, a quarter of draws brown the link out to 25 %
/// capacity, and relay nodes churn at 3× the link MTBF.
pub fn fault_spec(mtbf_secs: u64, horizon: SimDuration) -> FaultSpec {
    FaultSpec {
        horizon,
        link_mtbf: SimDuration::from_secs(mtbf_secs),
        link_outage_mean: SimDuration::from_secs(120),
        brownout_prob: 0.25,
        brownout_factor: 0.25,
        node_mtbf: SimDuration::from_secs(mtbf_secs * 3),
        node_downtime_mean: SimDuration::from_secs(90),
    }
}

/// Builds the plan the CLI's `--faults` flag applies to a
/// measurement-study scenario. `mtbf_secs == 0` ("none") returns the
/// empty plan, which [`ir_simnet::sim::Network::set_fault_plan`]
/// treats as a provable no-op — the study stays byte-identical to a
/// run without the flag.
pub fn cli_fault_plan(
    scenario: &Scenario,
    mtbf_secs: u64,
    schedule: Schedule,
    seed: u64,
) -> FaultPlan {
    if mtbf_secs == 0 {
        return FaultPlan::none();
    }
    let horizon = schedule.span() + SimDuration::from_secs(3600);
    overlay_fault_plan(scenario, &fault_spec(mtbf_secs, horizon), seed)
}

/// The failover policy used throughout the sweep.
pub fn failover_session() -> SessionConfig {
    let mut cfg = SessionConfig::paper_defaults();
    cfg.failover = Some(FailoverConfig::paper_defaults());
    cfg
}

/// One (MTBF, k) cell of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct FaultCell {
    /// Link MTBF in seconds (0 = no faults injected).
    pub mtbf_secs: u64,
    /// Random-set size.
    pub k: usize,
    /// Transfers attempted.
    pub transfers: usize,
    /// Transfers that completed before the horizon (%).
    pub availability_pct: f64,
    /// Mean mid-transfer path switches per transfer.
    pub mean_failovers: f64,
    /// Mean milliseconds spent stalled (zero-progress windows +
    /// backoff waits) per transfer.
    pub mean_stall_ms: f64,
    /// Mean end-to-end throughput over completed transfers (B/s).
    pub goodput: f64,
    /// `goodput` relative to the zero-fault cell at the same `k`
    /// (1.0 when this *is* the zero-fault cell).
    pub goodput_ratio: f64,
    /// Mean improvement (%) over indirect-chosen completed transfers
    /// (NaN when none chose indirect).
    pub mean_improvement_pct: f64,
}

fn cell_stats(mtbf_secs: u64, k: usize, records: &[TransferRecord]) -> FaultCell {
    let transfers = records.len();
    let completed: Vec<&TransferRecord> = records.iter().filter(|r| !r.abandoned).collect();
    let goodputs: Vec<f64> = completed
        .iter()
        .map(|r| r.selected_throughput)
        .filter(|t| t.is_finite())
        .collect();
    let imps: Vec<f64> = completed
        .iter()
        .filter(|r| r.chose_indirect())
        .map(|r| r.improvement_pct())
        .filter(|v| v.is_finite())
        .collect();
    FaultCell {
        mtbf_secs,
        k,
        transfers,
        availability_pct: completed.len() as f64 / transfers.max(1) as f64 * 100.0,
        mean_failovers: records.iter().map(|r| r.failovers as f64).sum::<f64>()
            / transfers.max(1) as f64,
        mean_stall_ms: records.iter().map(|r| r.stall_ms as f64).sum::<f64>()
            / transfers.max(1) as f64,
        goodput: Summary::of(&goodputs).map(|s| s.mean).unwrap_or(0.0),
        goodput_ratio: f64::NAN, // filled in by `run`
        mean_improvement_pct: Summary::of(&imps).map(|s| s.mean).unwrap_or(f64::NAN),
    }
}

/// The small fixed-roster scenario the sweep runs on: 3 clients ×
/// 6 relays × 1 server, Low/Medium clients (as in §4).
pub fn sweep_scenario(seed: u64) -> Scenario {
    build(
        seed,
        &roster::CLIENTS[..3],
        &roster::INTERMEDIATES[..6],
        &roster::SERVERS[..1],
        Calibration::default(),
        true,
    )
}

/// Runs the sweep: for each MTBF, a freshly built scenario carries that
/// fault plan on its network (every task clone inherits it), and each
/// `k` runs every client against the server under [`RandomSet`]
/// selection with failover enabled.
pub fn run(seed: u64, scale: Scale) -> Vec<FaultCell> {
    let transfers = match scale {
        Scale::Quick => 12,
        Scale::Paper => 40,
    };
    let schedule = Schedule::measurement_study().spread(transfers);
    let session = failover_session();

    let mut cells: Vec<FaultCell> = Vec::new();
    for &mtbf in MTBF_SECS {
        let mut scenario = sweep_scenario(seed);
        let plan = if mtbf == 0 {
            FaultPlan::none()
        } else {
            // Slack past the last scheduled start so late transfers
            // still see fault pressure.
            let horizon = schedule.span() + SimDuration::from_secs(3600);
            overlay_fault_plan(&scenario, &fault_spec(mtbf, horizon), seed ^ 0xFA17)
        };
        scenario.network.set_fault_plan(&plan);
        for &k in KS {
            let server = scenario.servers[0];
            let mut records = Vec::new();
            for (ci, &client) in scenario.clients.iter().enumerate() {
                let policy_seed = seed ^ ((ci as u64) << 16) ^ k as u64;
                records.extend(run_task_with(
                    &scenario,
                    client,
                    server,
                    &scenario.relays,
                    Box::new(RandomSet::new(k, policy_seed)),
                    schedule,
                    &session,
                ));
            }
            cells.push(cell_stats(mtbf, k, &records));
        }
    }

    // Goodput ratios against the zero-fault cell at the same k.
    let baselines: Vec<(usize, f64)> = cells
        .iter()
        .filter(|c| c.mtbf_secs == 0)
        .map(|c| (c.k, c.goodput))
        .collect();
    for cell in &mut cells {
        let base = baselines
            .iter()
            .find(|(k, _)| *k == cell.k)
            .map(|&(_, g)| g)
            .unwrap_or(f64::NAN);
        cell.goodput_ratio = if base > 0.0 {
            cell.goodput / base
        } else {
            f64::NAN
        };
    }
    cells
}

/// Builds the faults report.
pub fn report(seed: u64, scale: Scale) -> Report {
    report_of(&run(seed, scale))
}

/// Builds the faults report from precomputed (possibly cache-restored)
/// sweep cells.
pub fn report_of(cells: &[FaultCell]) -> Report {
    let mut table = ir_stats::TextTable::new()
        .title("availability and goodput under overlay faults")
        .header([
            "mtbf (s)",
            "k",
            "transfers",
            "avail %",
            "failovers",
            "stall ms",
            "goodput ratio",
        ]);
    let mut rows = Vec::new();
    for c in cells {
        table.row([
            if c.mtbf_secs == 0 {
                "none".into()
            } else {
                c.mtbf_secs.to_string()
            },
            c.k.to_string(),
            c.transfers.to_string(),
            format!("{:.1}", c.availability_pct),
            format!("{:.2}", c.mean_failovers),
            format!("{:.0}", c.mean_stall_ms),
            format!("{:.2}", c.goodput_ratio),
        ]);
        rows.push(vec![
            c.mtbf_secs.to_string(),
            c.k.to_string(),
            c.transfers.to_string(),
            format!("{:.3}", c.availability_pct),
            format!("{:.4}", c.mean_failovers),
            format!("{:.3}", c.mean_stall_ms),
            format!("{:.4}", c.goodput_ratio),
            format!("{:.3}", c.mean_improvement_pct),
        ]);
    }

    let clean: Vec<&FaultCell> = cells.iter().filter(|c| c.mtbf_secs == 0).collect();
    let faulted: Vec<&FaultCell> = cells.iter().filter(|c| c.mtbf_secs != 0).collect();
    let clean_avail = clean
        .iter()
        .map(|c| c.availability_pct)
        .fold(f64::INFINITY, f64::min);
    let faulted_avail = faulted
        .iter()
        .map(|c| c.availability_pct)
        .fold(f64::INFINITY, f64::min);
    let total_failovers: f64 = faulted
        .iter()
        .map(|c| c.mean_failovers * c.transfers as f64)
        .sum();
    let worst_ratio = faulted
        .iter()
        .map(|c| c.goodput_ratio)
        .filter(|r| r.is_finite())
        .fold(f64::INFINITY, f64::min);
    let clean_imps: Vec<f64> = clean
        .iter()
        .map(|c| c.mean_improvement_pct)
        .filter(|v| v.is_finite())
        .collect();
    let clean_mean_imp = Summary::of(&clean_imps).map(|s| s.mean).unwrap_or(f64::NAN);

    let mut body = table.render();
    body.push_str(&format!(
        "\nzero-fault availability (min over k): {clean_avail:.1}%\n\
         faulted availability (min over cells): {faulted_avail:.1}%\n\
         mid-transfer failovers across faulted cells: {total_failovers:.0}\n"
    ));

    Report {
        id: "faults",
        title: "Availability under overlay faults with session failover".into(),
        body,
        csv: vec![(
            "cells".into(),
            csv(
                &[
                    "mtbf_secs",
                    "k",
                    "transfers",
                    "availability_pct",
                    "mean_failovers",
                    "mean_stall_ms",
                    "goodput_ratio",
                    "mean_improvement_pct",
                ],
                &rows,
            ),
        )],
        checks: vec![
            Check::banded(
                "zero-fault availability (%)",
                100.0,
                clean_avail,
                99.9,
                100.0,
            ),
            Check::banded(
                "faulted availability, worst cell (%)",
                100.0,
                faulted_avail,
                75.0,
                100.0,
            ),
            Check::banded(
                "mid-transfer failovers, faulted cells (count)",
                1.0,
                total_failovers,
                1.0,
                1.0e9,
            ),
            // The zero-fault rows must still look like Fig 1: reuse the
            // shared mean-improvement band (informational — the small
            // 3×6×1 roster is not the full §2.2 population).
            Check::info(
                "zero-fault mean improvement (%) vs Fig 1 lower band",
                FIG1_MEAN_PCT.0,
                clean_mean_imp,
            ),
            Check::info("faulted goodput ratio, worst cell", 1.0, worst_ratio),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic_and_faults_engage() {
        let a = run(11, Scale::Quick);
        let b = run(11, Scale::Quick);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.mtbf_secs, y.mtbf_secs);
            assert_eq!(x.k, y.k);
            assert_eq!(x.transfers, y.transfers);
            assert_eq!(x.availability_pct.to_bits(), y.availability_pct.to_bits());
            assert_eq!(x.mean_failovers.to_bits(), y.mean_failovers.to_bits());
            assert_eq!(x.goodput.to_bits(), y.goodput.to_bits());
        }
        // Zero-fault cells finish everything, never fail over, and
        // anchor the ratios at exactly 1.
        for c in a.iter().filter(|c| c.mtbf_secs == 0) {
            assert_eq!(c.availability_pct, 100.0, "{c:?}");
            assert_eq!(c.mean_failovers, 0.0, "{c:?}");
            assert_eq!(c.mean_stall_ms, 0.0, "{c:?}");
            assert_eq!(c.goodput_ratio, 1.0, "{c:?}");
        }
        // Fault pressure must be visible somewhere: stalls or
        // failovers in at least one faulted cell.
        let engaged = a
            .iter()
            .filter(|c| c.mtbf_secs != 0)
            .any(|c| c.mean_failovers > 0.0 || c.mean_stall_ms > 0.0);
        assert!(engaged, "no faulted cell showed failovers or stalls: {a:?}");
    }

    #[test]
    fn report_has_cells_and_csv() {
        let r = report(11, Scale::Quick);
        assert_eq!(r.id, "faults");
        assert_eq!(r.csv.len(), 1);
        let lines = r.csv[0].1.lines().count();
        assert_eq!(lines, 1 + MTBF_SECS.len() * KS.len());
        assert!(!r.checks.is_empty());
    }
}
