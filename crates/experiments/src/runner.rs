//! Study drivers.
//!
//! Two experiment geometries cover all nine artefacts:
//!
//! * the **measurement study** (§2.2, Figs 1–5 + Tables I–II): every
//!   (client, relay) pair runs a schedule of transfers with the static
//!   single-relay policy;
//! * the **selection study** (§4, Fig 6 + Table III): each client runs
//!   a schedule per random-set size k with the uniform random-set
//!   policy.
//!
//! Both parallelise over independent (client, relay/k) tasks. Tasks do
//! not interact: links are `PerFlow` and bandwidth processes are pure
//! functions of their seeds, so running each task on its own clone of
//! the scenario network is *exactly* equivalent to one shared world.

use ir_core::{
    run_session_traced, FirstPortion, RandomSet, SelectionPolicy, SessionConfig, SimTransport,
    StaticSingle, TransferRecord, Transport, UtilizationTracker,
};
use ir_simnet::time::{SimDuration, SimTime};
use ir_simnet::topology::NodeId;
use ir_telemetry::trace::{Event, EventKind};
use ir_telemetry::Telemetry;
use ir_workload::{ClientProfile, Scenario, Schedule};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Scale of a study run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Fast, for tests and iteration: fewer transfers per task.
    Quick,
    /// The paper's counts (100 transfers/pair; 720 per (client, k)).
    Paper,
}

impl Scale {
    /// Transfers per (client, relay) pair in the measurement study.
    pub fn measurement_transfers(self) -> u64 {
        match self {
            Scale::Quick => 15,
            Scale::Paper => 100,
        }
    }

    /// Transfers per (client, k) in the selection study.
    pub fn selection_transfers(self) -> u64 {
        match self {
            Scale::Quick => 100,
            Scale::Paper => 720,
        }
    }
}

/// One (client, relay) task's records.
#[derive(Debug, Clone)]
pub struct PairRun {
    /// The client.
    pub client: NodeId,
    /// The relay under test.
    pub via: NodeId,
    /// The destination server.
    pub server: NodeId,
    /// One record per scheduled transfer.
    pub records: Vec<TransferRecord>,
}

/// Results of the §2.2 measurement study.
pub struct MeasurementData {
    /// Node names for rendering.
    pub names: BTreeMap<NodeId, String>,
    /// Ground-truth client profiles (assertions/debugging only).
    pub profiles: BTreeMap<NodeId, ClientProfile>,
    /// Client ids in roster order.
    pub clients: Vec<NodeId>,
    /// Relay ids in roster order.
    pub relays: Vec<NodeId>,
    /// The server used.
    pub server: NodeId,
    /// Per-(client, relay) runs.
    pub pairs: Vec<PairRun>,
}

impl MeasurementData {
    /// Iterates every record of the study.
    pub fn all_records(&self) -> impl Iterator<Item = &TransferRecord> {
        self.pairs.iter().flat_map(|p| p.records.iter())
    }

    /// Percent improvements of transfers where the indirect path was
    /// chosen — the population of Fig 1 (see DESIGN.md: the paper's
    /// §6 clarifies the 88%/12% split is over indirect-path transfers).
    pub fn indirect_improvements_pct(&self) -> Vec<f64> {
        self.all_records()
            .filter(|r| r.chose_indirect())
            .map(|r| r.improvement_pct())
            .filter(|v| v.is_finite())
            .collect()
    }

    /// Utilization bookkeeping over the whole study.
    pub fn utilization(&self) -> UtilizationTracker {
        let mut u = UtilizationTracker::new();
        for r in self.all_records() {
            u.observe(r);
        }
        u
    }

    /// Mean direct-path (control) throughput per client, bytes/sec —
    /// the paper's basis for Low/Medium/High categorisation.
    pub fn mean_direct_throughput(&self) -> BTreeMap<NodeId, f64> {
        let mut sums: BTreeMap<NodeId, (f64, u64)> = BTreeMap::new();
        for r in self.all_records() {
            if r.direct_throughput.is_finite() && r.direct_throughput > 0.0 {
                let e = sums.entry(r.client).or_insert((0.0, 0));
                e.0 += r.direct_throughput;
                e.1 += 1;
            }
        }
        sums.into_iter()
            .map(|(c, (s, n))| (c, s / n as f64))
            .collect()
    }

    /// Direct-path (control) throughput series per client, in schedule
    /// order — the basis of the variability classification.
    pub fn direct_series(&self) -> BTreeMap<NodeId, Vec<f64>> {
        let mut out: BTreeMap<NodeId, Vec<f64>> = BTreeMap::new();
        for p in &self.pairs {
            for r in &p.records {
                if r.direct_throughput.is_finite() && r.direct_throughput > 0.0 {
                    out.entry(r.client).or_default().push(r.direct_throughput);
                }
            }
        }
        out
    }

    /// Name of a node.
    pub fn name(&self, id: NodeId) -> &str {
        &self.names[&id]
    }
}

/// Runs one scheduled task: a session per schedule instant.
#[allow(clippy::too_many_arguments)] // one argument per sweep axis; a struct would churn every call site
fn run_task(
    scenario: &Scenario,
    client: NodeId,
    server: NodeId,
    full_set: &[NodeId],
    mut policy: Box<dyn SelectionPolicy>,
    schedule: Schedule,
    session: &SessionConfig,
    task_id: u64,
    tel: Option<&Arc<Telemetry>>,
) -> Vec<TransferRecord> {
    let mut net = scenario.network.clone();
    net.set_telemetry(tel.cloned());
    net.set_engine_mode(session.engine);
    let mut transport = SimTransport::new(net);
    let mut predictor = FirstPortion;
    let mut records = Vec::with_capacity(schedule.count as usize);
    for (i, at) in schedule.instants(SimTime::ZERO).enumerate() {
        // A session can overrun its slot (horizon > period); never move
        // the clock backwards.
        let target = at.max(transport.now());
        transport.network_mut().advance_until(target);
        let rec = run_session_traced(
            &mut transport,
            policy.as_mut(),
            &mut predictor,
            client,
            server,
            full_set,
            i as u64,
            session,
            tel.map(|t| t.as_ref()),
        );
        records.push(rec);
    }
    if let Some(tel) = tel {
        tel.metrics.counter("runner_tasks", vec![]).inc();
        tel.tracer.record(
            Event::span(
                EventKind::RunnerTask,
                0,
                transport.now().as_micros(),
                task_id,
            )
            .with_u64("client", client.0 as u64)
            .with_u64("transfers", records.len() as u64),
        );
    }
    records
}

/// Public single-task runner: a schedule of sessions for one client
/// with an arbitrary policy. Useful for policy shoot-outs (see the
/// `random_set_tuning` example and the ablation benches).
pub fn run_task_with(
    scenario: &Scenario,
    client: NodeId,
    server: NodeId,
    full_set: &[NodeId],
    policy: Box<dyn SelectionPolicy>,
    schedule: Schedule,
    session: &SessionConfig,
) -> Vec<TransferRecord> {
    run_task(
        scenario, client, server, full_set, policy, schedule, session, 0, None,
    )
}

/// Worker-thread override for [`parallel_map`]-driven studies: 0 (the
/// default) means one worker per available core.
static WORKER_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Caps study parallelism at `n` OS threads (0 restores the default:
/// one per available core). Affects all subsequent study runs in this
/// process; thread count never changes study *results*, only wall time.
pub fn set_worker_threads(n: usize) {
    WORKER_THREADS.store(n, Ordering::Relaxed);
}

/// Worker count the study runner's parallel map will actually use for
/// `n` tasks under the current [`set_worker_threads`] setting: the
/// configured cap, or
/// one per available core when the setting is 0 (the default and the
/// restore value), never more than the task count and never 0.
pub fn effective_worker_threads(n: usize) -> usize {
    let configured = WORKER_THREADS.load(Ordering::Relaxed);
    let workers = if configured > 0 {
        configured
    } else {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
    };
    workers.min(n.max(1))
}

/// Generic indexed parallel map over tasks. Deterministic: output `i`
/// corresponds to input `i` regardless of scheduling.
pub(crate) fn parallel_map<T: Send, F: Fn(usize) -> T + Sync>(n: usize, f: F) -> Vec<T> {
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    let workers = effective_worker_threads(n);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(i);
                results.lock().expect("poisoned")[i] = Some(out);
            });
        }
    });
    results
        .into_inner()
        .expect("poisoned")
        .into_iter()
        .map(|o| o.expect("task completed"))
        .collect()
}

/// Runs the §2.2 measurement study on a scenario: every (client, relay)
/// pair, `schedule.count` transfers each, static single-relay policy,
/// first-to-finish probes.
pub fn run_measurement_study(
    scenario: &Scenario,
    server_index: usize,
    schedule: Schedule,
    session: SessionConfig,
) -> MeasurementData {
    run_measurement_study_traced(scenario, server_index, schedule, session, None)
}

/// [`run_measurement_study`] with an optional telemetry handle shared
/// by every task (simnet, session, and runner layers all report into
/// it). With `None` this is exactly the untraced study.
pub fn run_measurement_study_traced(
    scenario: &Scenario,
    server_index: usize,
    schedule: Schedule,
    session: SessionConfig,
    tel: Option<Arc<Telemetry>>,
) -> MeasurementData {
    let server = scenario.servers[server_index];
    let tasks: Vec<(NodeId, NodeId)> = scenario
        .clients
        .iter()
        .flat_map(|&c| scenario.relays.iter().map(move |&v| (c, v)))
        .collect();

    let pairs = parallel_map(tasks.len(), |i| {
        let (client, via) = tasks[i];
        let records = run_task(
            scenario,
            client,
            server,
            &[via],
            Box::new(StaticSingle(via)),
            schedule,
            &session,
            i as u64,
            tel.as_ref(),
        );
        PairRun {
            client,
            via,
            server,
            records,
        }
    });

    let topo = scenario.network.topology();
    let names = (0..topo.node_count() as u32)
        .map(|i| {
            let id = NodeId(i);
            (id, topo.node(id).name.clone())
        })
        .collect();

    MeasurementData {
        names,
        profiles: scenario.profiles.clone(),
        clients: scenario.clients.clone(),
        relays: scenario.relays.clone(),
        server,
        pairs,
    }
}

/// One (client, k) run of the selection study.
#[derive(Debug, Clone)]
pub struct SelectionRun {
    /// The client.
    pub client: NodeId,
    /// Random-set size.
    pub k: usize,
    /// One record per scheduled transfer.
    pub records: Vec<TransferRecord>,
}

/// Results of the §4 selection study.
pub struct SelectionData {
    /// Node names for rendering.
    pub names: BTreeMap<NodeId, String>,
    /// Client ids.
    pub clients: Vec<NodeId>,
    /// The relay pool (full set).
    pub relays: Vec<NodeId>,
    /// Runs, one per (client, k).
    pub runs: Vec<SelectionRun>,
}

impl SelectionData {
    /// Mean percent improvement for a (client, k) run, over **all**
    /// transfers (Fig 6's y-axis).
    pub fn mean_improvement_pct(&self, client: NodeId, k: usize) -> Option<f64> {
        let run = self.runs.iter().find(|r| r.client == client && r.k == k)?;
        let vals: Vec<f64> = run
            .records
            .iter()
            .map(|r| r.improvement_pct())
            .filter(|v| v.is_finite())
            .collect();
        ir_stats::Summary::of(&vals).map(|s| s.mean)
    }

    /// The run for a (client, k), if present.
    pub fn run(&self, client: NodeId, k: usize) -> Option<&SelectionRun> {
        self.runs.iter().find(|r| r.client == client && r.k == k)
    }

    /// Name of a node.
    pub fn name(&self, id: NodeId) -> &str {
        &self.names[&id]
    }

    /// All k values present, ascending.
    pub fn ks(&self) -> Vec<usize> {
        let mut ks: Vec<usize> = self.runs.iter().map(|r| r.k).collect();
        ks.sort_unstable();
        ks.dedup();
        ks
    }
}

/// Runs the §4 selection study: for every client and every `k`, a
/// schedule of transfers with the uniform random-set policy and
/// measure-all probing.
pub fn run_selection_study(
    scenario: &Scenario,
    ks: &[usize],
    schedule: Schedule,
    session: SessionConfig,
    seed: u64,
) -> SelectionData {
    run_selection_study_traced(scenario, ks, schedule, session, seed, None)
}

/// [`run_selection_study`] with an optional telemetry handle (see
/// [`run_measurement_study_traced`]).
pub fn run_selection_study_traced(
    scenario: &Scenario,
    ks: &[usize],
    schedule: Schedule,
    session: SessionConfig,
    seed: u64,
    tel: Option<Arc<Telemetry>>,
) -> SelectionData {
    // §4.1 starts a preliminary download on every node of the random
    // set; "which produces the best throughput" over the first x bytes
    // is the first to deliver them — the default FirstToFinish race.
    // (MeasureAll — waiting for every probe before deciding — is kept
    // as an ablation: its probe phase is gated on the slowest relay,
    // which inverts the Fig 6 curve.)
    let server = scenario.servers[0];

    let tasks: Vec<(NodeId, usize)> = scenario
        .clients
        .iter()
        .flat_map(|&c| ks.iter().map(move |&k| (c, k)))
        .collect();

    let runs = parallel_map(tasks.len(), |i| {
        let (client, k) = tasks[i];
        let policy_seed = seed ^ ((client.0 as u64) << 32) ^ (k as u64);
        let records = run_task(
            scenario,
            client,
            server,
            &scenario.relays,
            Box::new(RandomSet::new(k, policy_seed)),
            schedule,
            &session,
            i as u64,
            tel.as_ref(),
        );
        SelectionRun { client, k, records }
    });

    let topo = scenario.network.topology();
    let names = (0..topo.node_count() as u32)
        .map(|i| {
            let id = NodeId(i);
            (id, topo.node(id).name.clone())
        })
        .collect();

    SelectionData {
        names,
        clients: scenario.clients.clone(),
        relays: scenario.relays.clone(),
        runs,
    }
}

/// Convenience: the measurement study at a given scale with default
/// session parameters (x = 100 KB, n = 2 MB).
pub fn measurement_study_default(seed: u64, scale: Scale) -> MeasurementData {
    measurement_study_default_traced(seed, scale, None)
}

/// [`measurement_study_default`] with an optional telemetry handle.
pub fn measurement_study_default_traced(
    seed: u64,
    scale: Scale,
    tel: Option<Arc<Telemetry>>,
) -> MeasurementData {
    let scenario = ir_workload::planetlab_study(seed);
    let schedule = Schedule::measurement_study().spread(scale.measurement_transfers());
    run_measurement_study_traced(&scenario, 0, schedule, SessionConfig::paper_defaults(), tel)
}

/// Convenience: the selection study at a given scale.
pub fn selection_study_default(seed: u64, scale: Scale, ks: &[usize]) -> SelectionData {
    selection_study_default_traced(seed, scale, ks, None)
}

/// [`selection_study_default`] with an optional telemetry handle.
pub fn selection_study_default_traced(
    seed: u64,
    scale: Scale,
    ks: &[usize],
    tel: Option<Arc<Telemetry>>,
) -> SelectionData {
    let scenario = ir_workload::selection_study(seed);
    let schedule = Schedule::selection_study().spread(scale.selection_transfers());
    run_selection_study_traced(
        &scenario,
        ks,
        schedule,
        SessionConfig::paper_defaults(),
        seed,
        tel,
    )
}

/// The k sweep used by Fig 6 (a subsample of 1..=35 that brackets the
/// paper's knee at k ≈ 10).
pub const FIG6_KS: &[usize] = &[1, 2, 3, 5, 7, 10, 15, 20, 25, 30, 35];

/// Duration helper re-exported for CLI flags.
pub fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `set_worker_threads(0)` must restore the available-parallelism
    /// default — not panic, and not pin the pool to 0 workers.
    #[test]
    fn worker_threads_zero_restores_available_parallelism() {
        let default = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4);
        set_worker_threads(2);
        assert_eq!(effective_worker_threads(64), 2);
        set_worker_threads(0);
        assert_eq!(effective_worker_threads(64), default.min(64));
        // Even a degenerate task count yields at least one worker.
        assert!(effective_worker_threads(0) >= 1);
        // And the pool actually runs with the restored default.
        let out = parallel_map(8, |i| i * 2);
        assert_eq!(out, (0..8).map(|i| i * 2).collect::<Vec<_>>());
    }

    fn tiny_scenario() -> Scenario {
        // 3 clients × 4 relays × 1 server keeps unit tests fast.
        ir_workload::build(
            9,
            &ir_workload::roster::CLIENTS[..3],
            &ir_workload::roster::INTERMEDIATES[..4],
            &ir_workload::roster::SERVERS[..1],
            ir_workload::Calibration::default(),
            false,
        )
    }

    #[test]
    fn measurement_study_produces_expected_counts() {
        let sc = tiny_scenario();
        let schedule = Schedule::measurement_study().truncated(4);
        let data = run_measurement_study(&sc, 0, schedule, SessionConfig::paper_defaults());
        assert_eq!(data.pairs.len(), 3 * 4);
        assert!(data.pairs.iter().all(|p| p.records.len() == 4));
        // Every record has a positive control throughput.
        for r in data.all_records() {
            assert!(r.direct_throughput > 0.0, "{r:?}");
        }
    }

    #[test]
    fn measurement_study_is_deterministic() {
        let a = {
            let sc = tiny_scenario();
            let d = run_measurement_study(
                &sc,
                0,
                Schedule::measurement_study().truncated(3),
                SessionConfig::paper_defaults(),
            );
            d.all_records().map(|r| r.improvement()).collect::<Vec<_>>()
        };
        let b = {
            let sc = tiny_scenario();
            let d = run_measurement_study(
                &sc,
                0,
                Schedule::measurement_study().truncated(3),
                SessionConfig::paper_defaults(),
            );
            d.all_records().map(|r| r.improvement()).collect::<Vec<_>>()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn selection_study_produces_expected_counts() {
        let sc = tiny_scenario();
        let schedule = Schedule::selection_study().truncated(5);
        let data = run_selection_study(&sc, &[1, 2], schedule, SessionConfig::paper_defaults(), 7);
        assert_eq!(data.runs.len(), 3 * 2);
        assert_eq!(data.ks(), vec![1, 2]);
        let c0 = data.clients[0];
        assert!(data.mean_improvement_pct(c0, 1).is_some());
        assert!(data.run(c0, 3).is_none());
        // Candidate-set sizes honour k.
        for run in &data.runs {
            for r in &run.records {
                assert_eq!(r.candidates.len(), run.k.min(4));
            }
        }
    }

    #[test]
    fn utilization_tracks_choices() {
        let sc = tiny_scenario();
        let data = run_measurement_study(
            &sc,
            0,
            Schedule::measurement_study().truncated(5),
            SessionConfig::paper_defaults(),
        );
        let u = data.utilization();
        // Every (client, via) pair appeared exactly 5 times.
        for p in &data.pairs {
            assert_eq!(u.appeared_count(p.client, p.via), 5);
        }
    }

    #[test]
    fn traced_study_matches_untraced_and_emits_runner_spans() {
        let schedule = || Schedule::measurement_study().truncated(3);
        let plain = {
            let sc = tiny_scenario();
            run_measurement_study(&sc, 0, schedule(), SessionConfig::paper_defaults())
        };
        let tel = Arc::new(Telemetry::new());
        let traced = {
            let sc = tiny_scenario();
            run_measurement_study_traced(
                &sc,
                0,
                schedule(),
                SessionConfig::paper_defaults(),
                Some(Arc::clone(&tel)),
            )
        };
        // Telemetry is observational: record-for-record identical.
        assert_eq!(plain.pairs.len(), traced.pairs.len());
        for (p, t) in plain.pairs.iter().zip(traced.pairs.iter()) {
            assert_eq!(p.records, t.records);
        }
        // One runner span per (client, relay) task, and the layers
        // below reported through the same handle.
        let snap = tel.metrics.snapshot();
        assert_eq!(
            snap.counter("runner_tasks", &vec![]),
            Some(plain.pairs.len() as u64)
        );
        let sessions = plain.pairs.len() as u64 * 3;
        assert_eq!(snap.counter("session_completed", &vec![]), Some(sessions));
        let events = tel.tracer.snapshot();
        assert!(events
            .iter()
            .any(|e| e.kind == ir_telemetry::trace::EventKind::RunnerTask));
    }
}
