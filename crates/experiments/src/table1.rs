//! Table I — penalty statistics under client filters.
//!
//! Paper values:
//!
//! | filter | penalty points | avg penalty | st.dev | max |
//! |---|---|---|---|---|
//! | all clients | 12% | 290% | 706% | 3840% |
//! | Med/Low throughput | 8% | 43% | 71% | 356% |
//! | + low variability | 3% | 12% | 7% | 35% |
//!
//! Note on units: the paper defines improvement as `(sel − dir)/dir`
//! (so halving throughput is −50%), yet reports penalties far above
//! 100%, which is impossible under that definition. The penalty
//! magnitudes in Table I are therefore consistent with the *slowdown*
//! ratio `(dir − sel)/sel` (halving → 100%, a 39× collapse → 3840%).
//! We report the slowdown ratio to match Table I and note the
//! improvement-based figure alongside (see EXPERIMENTS.md).

use crate::report::{csv, Check, Report};
use crate::runner::MeasurementData;
use ir_simnet::topology::NodeId;
use ir_stats::Summary;
use ir_workload::{Category, Variability};
use std::collections::BTreeMap;

/// Measured client classification, derived exactly as the paper does:
/// category from mean direct throughput, variability from the direct
/// throughput series.
#[derive(Debug, Clone)]
pub struct ClientClasses {
    /// Measured category per client.
    pub category: BTreeMap<NodeId, Category>,
    /// Measured variability per client.
    pub variability: BTreeMap<NodeId, Variability>,
}

/// Classifies every client from the measurement data.
pub fn classify(data: &MeasurementData) -> ClientClasses {
    let means = data.mean_direct_throughput();
    let series = data.direct_series();
    let mut category = BTreeMap::new();
    let mut variability = BTreeMap::new();
    for &c in &data.clients {
        if let Some(&m) = means.get(&c) {
            category.insert(c, Category::of_rate(m));
        }
        if let Some(s) = series.get(&c) {
            variability.insert(c, Variability::of_series(s));
        }
    }
    ClientClasses {
        category,
        variability,
    }
}

/// Penalty statistics over one filtered population.
#[derive(Debug, Clone, Copy)]
pub struct PenaltyStats {
    /// Fraction of transfers that were penalties, percent.
    pub points_pct: f64,
    /// Mean slowdown among penalties, percent (`(dir-sel)/sel`).
    pub avg_pct: f64,
    /// Standard deviation of the slowdown, percent.
    pub stdev_pct: f64,
    /// Maximum slowdown, percent.
    pub max_pct: f64,
    /// Population size (indirect-chosen transfers passing the filter).
    pub population: usize,
}

/// Computes penalty statistics over indirect-chosen records whose
/// client passes `keep`.
pub fn penalty_stats<F: Fn(NodeId) -> bool>(data: &MeasurementData, keep: F) -> PenaltyStats {
    let mut population = 0usize;
    let mut slowdowns: Vec<f64> = Vec::new();
    for r in data.all_records() {
        if !r.chose_indirect() || !keep(r.client) {
            continue;
        }
        let imp = r.improvement();
        if !imp.is_finite() {
            continue;
        }
        population += 1;
        if imp < 0.0 && r.selected_throughput > 0.0 {
            let slowdown =
                (r.direct_throughput - r.selected_throughput) / r.selected_throughput * 100.0;
            slowdowns.push(slowdown);
        }
    }
    match Summary::of(&slowdowns) {
        None => PenaltyStats {
            points_pct: 0.0,
            avg_pct: 0.0,
            stdev_pct: 0.0,
            max_pct: 0.0,
            population,
        },
        Some(s) => PenaltyStats {
            points_pct: slowdowns.len() as f64 / population.max(1) as f64 * 100.0,
            avg_pct: s.mean,
            stdev_pct: s.stdev,
            max_pct: s.max,
            population,
        },
    }
}

/// Builds the Table I report.
pub fn report(data: &MeasurementData) -> Report {
    let classes = classify(data);
    let is_high = |c: NodeId| classes.category.get(&c) == Some(&Category::High);
    let is_variable = |c: NodeId| classes.variability.get(&c) == Some(&Variability::Variable);

    let all = penalty_stats(data, |_| true);
    let med_low = penalty_stats(data, |c| !is_high(c));
    let low_var = penalty_stats(data, |c| !is_high(c) && !is_variable(c));

    let mut t = ir_stats::TextTable::new()
        .title("TABLE I: penalty statistics (slowdown ratio, %)")
        .header(["filter", "n", "penalty pts", "avg", "stdev", "max"]);
    for (label, s) in [
        ("all clients", all),
        ("Med/Low throughput", med_low),
        ("+ low variability", low_var),
    ] {
        t.row([
            label.to_string(),
            s.population.to_string(),
            format!("{:.1}%", s.points_pct),
            format!("{:.0}%", s.avg_pct),
            format!("{:.0}%", s.stdev_pct),
            format!("{:.0}%", s.max_pct),
        ]);
    }

    let mut body = t.render();
    body.push('\n');
    let n_high = classes
        .category
        .values()
        .filter(|&&c| c == Category::High)
        .count();
    let n_var = classes
        .variability
        .values()
        .filter(|&&v| v == Variability::Variable)
        .count();
    body.push_str(&format!(
        "measured classes: {} High-throughput clients, {} variable clients (of {})\n",
        n_high,
        n_var,
        data.clients.len()
    ));

    let rows = vec![
        vec![
            "all".into(),
            format!("{:.2}", all.points_pct),
            format!("{:.2}", all.avg_pct),
            format!("{:.2}", all.stdev_pct),
            format!("{:.2}", all.max_pct),
        ],
        vec![
            "med_low".into(),
            format!("{:.2}", med_low.points_pct),
            format!("{:.2}", med_low.avg_pct),
            format!("{:.2}", med_low.stdev_pct),
            format!("{:.2}", med_low.max_pct),
        ],
        vec![
            "low_var".into(),
            format!("{:.2}", low_var.points_pct),
            format!("{:.2}", low_var.avg_pct),
            format!("{:.2}", low_var.stdev_pct),
            format!("{:.2}", low_var.max_pct),
        ],
    ];

    Report {
        id: "table1",
        title: "Table I: penalty statistics".into(),
        body,
        csv: vec![(
            "penalties".into(),
            csv(
                &["filter", "points_pct", "avg_pct", "stdev_pct", "max_pct"],
                &rows,
            ),
        )],
        checks: vec![
            Check::banded("all: penalty points (%)", 12.0, all.points_pct, 3.0, 25.0),
            Check::banded(
                "med/low: penalty points (%)",
                8.0,
                med_low.points_pct,
                1.0,
                20.0,
            ),
            Check::banded(
                "low-var: penalty points (%)",
                3.0,
                low_var.points_pct,
                0.0,
                12.0,
            ),
            // The monotone *shape* claims: each filter strictly helps.
            Check::banded(
                "filtering reduces points (all - low-var)",
                9.0,
                all.points_pct - low_var.points_pct,
                0.0,
                100.0,
            ),
            Check::banded(
                "filtering reduces avg penalty (all - low-var)",
                278.0,
                all.avg_pct - low_var.avg_pct,
                0.0,
                1e6,
            ),
            Check::info("all: avg penalty (%)", 290.0, all.avg_pct),
            Check::info("all: max penalty (%)", 3840.0, all.max_pct),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_measurement_study;
    use ir_core::SessionConfig;
    use ir_workload::Schedule;

    #[test]
    fn table1_filters_are_monotone() {
        let sc = ir_workload::build(
            17,
            &ir_workload::roster::CLIENTS[..6],
            &ir_workload::roster::INTERMEDIATES[..4],
            &ir_workload::roster::SERVERS[..1],
            ir_workload::Calibration::default(),
            false,
        );
        let data = run_measurement_study(
            &sc,
            0,
            Schedule::measurement_study().truncated(10),
            SessionConfig::paper_defaults(),
        );
        let all = penalty_stats(&data, |_| true);
        let classes = classify(&data);
        let no_high = penalty_stats(&data, |c| classes.category.get(&c) != Some(&Category::High));
        // Filtered population can only shrink.
        assert!(no_high.population <= all.population);
        let r = report(&data);
        assert!(r.render().contains("TABLE I"));
    }

    #[test]
    fn penalty_stats_empty_population() {
        let sc = ir_workload::build(
            17,
            &ir_workload::roster::CLIENTS[..2],
            &ir_workload::roster::INTERMEDIATES[..2],
            &ir_workload::roster::SERVERS[..1],
            ir_workload::Calibration::default(),
            false,
        );
        let data = run_measurement_study(
            &sc,
            0,
            Schedule::measurement_study().truncated(2),
            SessionConfig::paper_defaults(),
        );
        let none = penalty_stats(&data, |_| false);
        assert_eq!(none.population, 0);
        assert_eq!(none.points_pct, 0.0);
    }
}
