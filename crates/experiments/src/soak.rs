//! Soak — the event-driven relay's concurrency artefact.
//!
//! A real-socket load study: `clients` concurrent racing downloads
//! (slow shaped direct path vs one fast relay) funnelled through a
//! single [`ir_relay::Relay`] reactor, exactly the regime the
//! poll-based readiness loop was built for. At
//! [`SoakConfig::paper`] scale this is **2000 simultaneous clients
//! against one relay process** — far beyond what a thread-per-
//! connection daemon would tolerate on a small box, which is the
//! point: the artefact proves zero transfers are lost, measures
//! aggregate goodput, and reports the p50/p99 accept-to-first-byte
//! wait taken from the relay's own [`RelayFirstByte`] spans.
//!
//! Unlike every other study in this crate, the soak drives **real
//! loopback sockets under wall-clock shaping**, so its latency and
//! goodput numbers are measurements of this machine, not pure
//! functions of `(seed, config)`. It therefore stays out of
//! [`crate::sweep::full_plan`] (whose artefacts must replay
//! byte-identically); [`crate::sweep::soak_plan`] wraps it in its own
//! fingerprinted plan for the `soak` CLI subcommand, and the
//! event-vs-threaded regression gate lives in BENCH_PR9.json
//! (see [`crate::bench_gate`]).
//!
//! [`RelayFirstByte`]: ir_telemetry::trace::EventKind::RelayFirstByte

use crate::report::{csv, Check, Report};
use ir_relay::{
    download, ClientConfig, OriginConfig, OriginServer, RateSchedule, Relay, RelayConfig, RelayMode,
};
use ir_telemetry::trace::EventKind;
use ir_telemetry::Telemetry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Geometry and rates of a soak run. All fields are semantic inputs:
/// each one is hashed into the study fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoakConfig {
    /// Concurrent racing clients.
    pub clients: u32,
    /// Bytes per transfer.
    pub file_bytes: u64,
    /// Probe size x (bytes) for the racing download.
    pub probe_bytes: u64,
    /// Direct-path shaping, bytes/s — slow enough that every probe
    /// race resolves to the overlay, funnelling the herd through the
    /// relay.
    pub direct_rate: u64,
    /// Relay-leg shaping, bytes/s; 0 = unshaped (loopback speed).
    pub relay_rate: u64,
    /// Reactor worker (shard) count under [`RelayMode::Event`].
    pub workers: u32,
    /// Client start times are spread over this window so connect
    /// storms stay below the listener backlog.
    pub stagger_ms: u64,
}

impl SoakConfig {
    /// The headline scale: 2000 simultaneous clients against one
    /// event-driven relay.
    pub fn paper() -> Self {
        SoakConfig {
            clients: 2000,
            file_bytes: 12_000,
            probe_bytes: 2_000,
            direct_rate: 30_000,
            relay_rate: 0,
            workers: 4,
            stagger_ms: 4_000,
        }
    }

    /// A seconds-scale geometry for the quick sweep and CI.
    pub fn quick() -> Self {
        SoakConfig {
            clients: 250,
            file_bytes: 12_000,
            probe_bytes: 2_000,
            direct_rate: 30_000,
            relay_rate: 0,
            workers: 4,
            stagger_ms: 1_000,
        }
    }

    /// The bench-gate geometry: small enough to run repeatedly in
    /// both relay modes, big enough that accept-to-first-byte p99 is
    /// a meaningful tail (64 clients arriving within half a second).
    pub fn gate() -> Self {
        SoakConfig {
            clients: 64,
            file_bytes: 12_000,
            probe_bytes: 2_000,
            direct_rate: 30_000,
            relay_rate: 0,
            workers: 4,
            stagger_ms: 500,
        }
    }
}

/// Outcome of one soak run. All-integer so the result is `Eq` and
/// byte-codable, but — real sockets, wall clocks — two runs of the
/// same config legitimately differ in the measured fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoakResult {
    /// The geometry that produced this result.
    pub cfg: SoakConfig,
    /// True when the relay ran the event-driven reactor, false for
    /// the thread-per-connection baseline.
    pub event_mode: bool,
    /// Transfers that finished with a byte-exact body.
    pub completed: u64,
    /// Transfers that errored, hung up, or reassembled corrupt.
    pub lost: u64,
    /// Connections the relay accepted (lifecycle counter). At most
    /// one per client; can fall just short of `clients` when a losing
    /// relay dial is cancelled before it even connects.
    pub accepted: u64,
    /// Accept-side refusals (should be zero — the soak runs without a
    /// connection cap).
    pub backpressure_drops: u64,
    /// Accept-to-first-byte wait, microseconds: median…
    pub p50_first_byte_us: u64,
    /// …99th percentile…
    pub p99_first_byte_us: u64,
    /// …and worst case, over every [`RelayFirstByte`] span recorded.
    ///
    /// [`RelayFirstByte`]: ir_telemetry::trace::EventKind::RelayFirstByte
    pub max_first_byte_us: u64,
    /// Aggregate goodput: completed payload bytes per wall second.
    pub goodput_bps: u64,
    /// Wall time from first client start to last client done, ms.
    pub wall_ms: u64,
    /// Post-load graceful drain finished before its deadline…
    pub drain_completed: bool,
    /// …and the active gauge never rose while it ran.
    pub drain_monotone: bool,
}

/// Percentile over a sorted sample set (nearest-rank on the sorted
/// slice; 0 for an empty set).
fn percentile(sorted: &[u64], p: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() as u64 * p).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Runs the soak: starts the two origins and one relay in `mode`,
/// unleashes `cfg.clients` racing downloads on small-stack threads,
/// and collects lifecycle counters plus the relay's own first-byte
/// spans once the herd is done. Finishes with a graceful drain so the
/// shutdown path is part of every soak.
pub fn run(cfg: &SoakConfig, mode: RelayMode) -> SoakResult {
    let tel = Arc::new(Telemetry::new());
    let origin_fast =
        OriginServer::start(OriginConfig::new(cfg.file_bytes)).expect("start fast origin");
    let origin_direct = OriginServer::start(
        OriginConfig::new(cfg.file_bytes).shaped(RateSchedule::constant(cfg.direct_rate as f64)),
    )
    .expect("start direct origin");
    let relay_cfg = if cfg.relay_rate > 0 {
        RelayConfig::shaped(RateSchedule::constant(cfg.relay_rate as f64))
    } else {
        RelayConfig::new()
    };
    let mut relay =
        Relay::start(relay_cfg.with_telemetry(tel.clone()).with_mode(mode)).expect("start relay");

    let direct = origin_direct.addr();
    let for_relays = origin_fast.addr();
    let relay_addr = relay.addr();
    let client_cfg = ClientConfig {
        path: "/f".into(),
        probe_bytes: cfg.probe_bytes,
        total_bytes: cfg.file_bytes,
        timeout: Duration::from_secs(120),
    };

    let completed = AtomicU64::new(0);
    let lost = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for i in 0..cfg.clients as u64 {
            let client_cfg = &client_cfg;
            let completed = &completed;
            let lost = &lost;
            std::thread::Builder::new()
                // Small stacks keep thousands of clients cheap.
                .stack_size(256 * 1024)
                .spawn_scoped(s, move || {
                    let window = cfg.stagger_ms.max(1);
                    std::thread::sleep(Duration::from_millis(i * 7 % window));
                    match download(direct, for_relays, &[relay_addr], client_cfg) {
                        Ok(out) if out.body_ok => completed.fetch_add(1, Ordering::Relaxed),
                        _ => lost.fetch_add(1, Ordering::Relaxed),
                    };
                })
                .expect("spawn soak client");
        }
    });
    let wall = t0.elapsed();
    let completed = completed.into_inner();
    let lost = lost.into_inner();

    let report = relay.drain(Duration::from_secs(30));

    let mut waits: Vec<u64> = tel
        .tracer
        .snapshot()
        .iter()
        .filter(|e| e.kind == EventKind::RelayFirstByte)
        .filter_map(|e| e.dur_us)
        .collect();
    waits.sort_unstable();
    let snap = tel.metrics.snapshot();
    let wall_ms = (wall.as_millis() as u64).max(1);
    SoakResult {
        cfg: *cfg,
        event_mode: matches!(mode, RelayMode::Event { .. }),
        completed,
        lost,
        accepted: relay.lifecycle().accepted,
        backpressure_drops: snap
            .counter("relay_backpressure_drops", &vec![])
            .unwrap_or(0),
        p50_first_byte_us: percentile(&waits, 50),
        p99_first_byte_us: percentile(&waits, 99),
        max_first_byte_us: waits.last().copied().unwrap_or(0),
        goodput_bps: completed * cfg.file_bytes * 1000 / wall_ms,
        wall_ms,
        drain_completed: report.completed,
        drain_monotone: report.monotone,
    }
}

/// Runs the soak at `cfg` under `mode` and renders the report (the
/// CLI path).
pub fn report(cfg: &SoakConfig, mode: RelayMode) -> Report {
    report_of(&run(cfg, mode))
}

/// Renders the report from a (possibly cache-restored) result.
pub fn report_of(r: &SoakResult) -> Report {
    let mut table = ir_stats::TextTable::new()
        .title("soak: concurrent racing downloads through one relay")
        .header(["metric", "value"]);
    let rows_src: Vec<(&str, String)> = vec![
        (
            "relay mode",
            if r.event_mode { "event" } else { "threaded" }.to_string(),
        ),
        ("clients", r.cfg.clients.to_string()),
        ("file bytes", r.cfg.file_bytes.to_string()),
        ("completed", r.completed.to_string()),
        ("lost", r.lost.to_string()),
        ("relay accepts", r.accepted.to_string()),
        ("backpressure drops", r.backpressure_drops.to_string()),
        (
            "first byte p50 (ms)",
            format!("{:.1}", r.p50_first_byte_us as f64 / 1e3),
        ),
        (
            "first byte p99 (ms)",
            format!("{:.1}", r.p99_first_byte_us as f64 / 1e3),
        ),
        (
            "first byte max (ms)",
            format!("{:.1}", r.max_first_byte_us as f64 / 1e3),
        ),
        (
            "goodput (KB/s)",
            format!("{:.1}", r.goodput_bps as f64 / 1e3),
        ),
        ("wall (s)", format!("{:.1}", r.wall_ms as f64 / 1e3)),
        ("drain completed", r.drain_completed.to_string()),
        ("drain monotone", r.drain_monotone.to_string()),
    ];
    let mut rows = Vec::new();
    for (k, v) in &rows_src {
        table.row([k.to_string(), v.clone()]);
        rows.push(vec![k.to_string(), v.clone()]);
    }

    Report {
        id: "soak",
        title: format!(
            "Soak: {} concurrent clients through one {} relay",
            r.cfg.clients,
            if r.event_mode {
                "event-driven"
            } else {
                "threaded"
            }
        ),
        body: table.render(),
        csv: vec![("stats".into(), csv(&["metric", "value"], &rows))],
        checks: vec![
            Check::banded(
                "transfers completed / clients",
                1.0,
                if r.cfg.clients == 0 {
                    0.0
                } else {
                    r.completed as f64 / r.cfg.clients as f64
                },
                1.0,
                1.0,
            ),
            Check::banded("lost transfers", 0.0, r.lost as f64, 0.0, 0.0),
            // The reactor must have actually timed its accepts: an
            // empty first-byte sample set means the spans never fired.
            Check::banded(
                "first-byte spans recorded",
                1.0,
                if r.max_first_byte_us > 0 { 1.0 } else { 0.0 },
                1.0,
                1.0,
            ),
            Check::banded(
                "graceful drain (completed, monotone)",
                1.0,
                if r.drain_completed && r.drain_monotone {
                    1.0
                } else {
                    0.0
                },
                1.0,
                1.0,
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SoakConfig {
        SoakConfig {
            clients: 24,
            file_bytes: 8_000,
            probe_bytes: 2_000,
            direct_rate: 30_000,
            relay_rate: 0,
            workers: 2,
            stagger_ms: 200,
        }
    }

    #[test]
    fn tiny_soak_loses_nothing_in_either_mode() {
        for mode in [RelayMode::Event { workers: 2 }, RelayMode::Threaded] {
            let r = run(&tiny(), mode);
            assert_eq!(r.completed, 24, "{mode:?}: {r:?}");
            assert_eq!(r.lost, 0, "{mode:?}: {r:?}");
            // A losing relay dial can be cancelled pre-connect, so
            // `accepted` may fall just short of the client count.
            assert!(r.accepted > 0 && r.accepted <= 24, "{mode:?}: {r:?}");
            assert_eq!(r.backpressure_drops, 0, "{mode:?}: {r:?}");
            assert!(r.p99_first_byte_us > 0, "{mode:?}: {r:?}");
            assert!(r.p50_first_byte_us <= r.p99_first_byte_us, "{mode:?}");
            assert!(r.p99_first_byte_us <= r.max_first_byte_us, "{mode:?}");
            assert!(r.goodput_bps > 0, "{mode:?}: {r:?}");
            assert!(r.drain_completed && r.drain_monotone, "{mode:?}: {r:?}");
            assert_eq!(r.event_mode, matches!(mode, RelayMode::Event { .. }));
        }
    }

    #[test]
    fn report_passes_its_checks() {
        let r = report(&tiny(), RelayMode::Event { workers: 2 });
        assert!(r.all_pass(), "{}", r.render());
        assert!(r.render().contains("soak"), "{}", r.render());
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 99), 0);
        assert_eq!(percentile(&[7], 50), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&v, 100), 100);
    }
}
