//! Per-site improvements — the abstract's headline range.
//!
//! "Indirect routing produces a throughput improvement … ranging from
//! 33% to 49% on average, depending on the Web site" (§2.2). We run the
//! measurement study against each of the four destination sites and
//! report the per-site mean improvement over indirect-chosen transfers.

use crate::report::{csv, Check, Report};
use crate::runner::run_measurement_study;
use ir_core::SessionConfig;
use ir_stats::Summary;
use ir_workload::{planetlab_study, Schedule};

/// Per-site result.
#[derive(Debug, Clone)]
pub struct SiteResult {
    /// Site label (eBay, Google, Microsoft, Yahoo).
    pub site: String,
    /// Mean improvement (%) over indirect-chosen transfers.
    pub mean_improvement_pct: f64,
    /// Fraction of transfers that chose the indirect path (%).
    pub chose_indirect_pct: f64,
    /// Number of indirect-chosen transfers.
    pub n: usize,
}

/// Runs the study against every site. `transfers_per_pair` bounds the
/// cost (there are 4 × clients × relays tasks).
pub fn run(seed: u64, transfers_per_pair: u64) -> Vec<SiteResult> {
    let scenario = planetlab_study(seed);
    let schedule = Schedule::measurement_study().spread(transfers_per_pair);
    (0..scenario.servers.len())
        .map(|si| {
            let data =
                run_measurement_study(&scenario, si, schedule, SessionConfig::paper_defaults());
            let imps = data.indirect_improvements_pct();
            let total = data.all_records().count();
            SiteResult {
                site: scenario.name(scenario.servers[si]).to_string(),
                mean_improvement_pct: Summary::of(&imps).map(|s| s.mean).unwrap_or(f64::NAN),
                chose_indirect_pct: imps.len() as f64 / total.max(1) as f64 * 100.0,
                n: imps.len(),
            }
        })
        .collect()
}

/// Builds the per-site report.
pub fn report(seed: u64, transfers_per_pair: u64) -> Report {
    report_of(&run(seed, transfers_per_pair))
}

/// Builds the per-site report from precomputed (possibly
/// cache-restored) study results.
pub fn report_of(results: &[SiteResult]) -> Report {
    let mut table = ir_stats::TextTable::new()
        .title("per-site improvement (indirect-chosen transfers)")
        .header(["site", "mean improvement (%)", "chose indirect (%)", "n"]);
    let mut rows = Vec::new();
    for r in results {
        table.row([
            r.site.clone(),
            format!("{:+.1}", r.mean_improvement_pct),
            format!("{:.1}", r.chose_indirect_pct),
            r.n.to_string(),
        ]);
        rows.push(vec![
            r.site.clone(),
            format!("{:.2}", r.mean_improvement_pct),
            format!("{:.2}", r.chose_indirect_pct),
            r.n.to_string(),
        ]);
    }

    let means: Vec<f64> = results.iter().map(|r| r.mean_improvement_pct).collect();
    let lo = means.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let ebay = results
        .iter()
        .find(|r| r.site == "eBay")
        .map(|r| r.n)
        .unwrap_or(0);
    let max_n = results.iter().map(|r| r.n).max().unwrap_or(0);

    let mut body = table.render();
    body.push_str(&format!(
        "\nper-site mean-improvement range: {lo:.1}% .. {hi:.1}% (paper: 33% .. 49%)\n"
    ));

    Report {
        id: "sites",
        title: "Per-site improvements (abstract's 33-49% range)".into(),
        body,
        csv: vec![(
            "per_site".into(),
            csv(
                &["site", "mean_improvement_pct", "chose_indirect_pct", "n"],
                &rows,
            ),
        )],
        checks: vec![
            Check::banded("lowest per-site mean (%)", 33.0, lo, 15.0, 70.0),
            Check::banded("highest per-site mean (%)", 49.0, hi, 25.0, 90.0),
            Check::banded("per-site spread (pp)", 16.0, hi - lo, 2.0, 60.0),
            // The paper focuses on eBay because it has "a much larger
            // number of data points that correspond to transfers
            // through the indirect path".
            Check::banded(
                "eBay has the most indirect transfers (n/max_n)",
                1.0,
                ebay as f64 / max_n.max(1) as f64,
                0.99,
                1.0,
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sites_report_covers_all_four() {
        let r = report(5, 3);
        let text = r.render();
        for site in ["eBay", "Google", "Microsoft", "Yahoo"] {
            assert!(text.contains(site), "missing {site}");
        }
        assert_eq!(r.csv[0].1.lines().count(), 5);
    }
}
