//! The abstract's cost claim: "these improvements come at a reasonably
//! low cost with respect to overhead and penalties."
//!
//! Penalties are Table I's subject; this experiment quantifies the
//! *overhead*: how much of the achievable path rate the selecting
//! process sacrifices to probing. For every indirect-chosen transfer we
//! compare the end-to-end throughput (probe + decision + remainder,
//! wall clock) against the remainder-phase path rate — the rate a
//! clairvoyant client that skipped probing would have achieved. The gap
//! is the price of not knowing the best path in advance.

use crate::report::{csv, Check, Report};
use crate::runner::MeasurementData;
use ir_stats::Summary;

/// Per-transfer probing overhead as a fraction in `[0, 1)`:
/// `1 − selected_throughput / selected_path_rate`.
pub fn overheads(data: &MeasurementData) -> Vec<f64> {
    data.all_records()
        .filter(|r| r.chose_indirect() && !r.probe_timeout)
        .filter(|r| r.selected_path_rate.is_finite() && r.selected_path_rate > 0.0)
        .map(|r| 1.0 - r.selected_throughput / r.selected_path_rate)
        .filter(|v| v.is_finite())
        .collect()
}

/// Builds the overhead report.
pub fn report(data: &MeasurementData) -> Report {
    let ovh: Vec<f64> = overheads(data).iter().map(|v| v * 100.0).collect();
    assert!(!ovh.is_empty(), "no indirect transfers to measure");
    let s = Summary::of(&ovh).expect("non-empty");
    let probe_fraction = {
        // The floor: x/n of the file is transferred at probe pace even
        // with a perfect instantaneous decision.
        let r = data.all_records().next().expect("records exist");
        100.0 * 100.0 * 1024.0 / r.file_bytes as f64
    };

    let body = format!(
        "population: {} indirect-chosen transfers\n\
         probing overhead (1 - end-to-end / path-rate):\n\
         mean {:.1}%   median {:.1}%   p-max {:.1}%\n\
         reference floor (probe bytes / file bytes): {:.1}%\n\n\
         The overhead is dominated by the probe phase: the client spends\n\
         the first x bytes at race pace plus one decision round-trip, and\n\
         then the remainder rides the warm connection at full rate.\n",
        s.count, s.mean, s.median, s.max, probe_fraction
    );

    let rows = vec![vec![
        format!("{:.3}", s.mean),
        format!("{:.3}", s.median),
        format!("{:.3}", s.max),
        format!("{probe_fraction:.3}"),
    ]];

    Report {
        id: "overhead",
        title: "Probing overhead (abstract: 'reasonably low cost')".into(),
        body,
        csv: vec![(
            "overhead".into(),
            csv(&["mean_pct", "median_pct", "max_pct", "floor_pct"], &rows),
        )],
        checks: vec![
            Check::banded("mean probing overhead (%)", 10.0, s.mean, 0.0, 25.0),
            Check::banded("median probing overhead (%)", 8.0, s.median, 0.0, 25.0),
            // The overhead should not be wildly above the x/n floor.
            Check::banded(
                "mean overhead / floor ratio",
                2.0,
                s.mean / probe_fraction,
                0.2,
                8.0,
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_measurement_study;
    use ir_core::SessionConfig;
    use ir_workload::Schedule;

    #[test]
    fn overhead_is_small_and_positive() {
        let sc = ir_workload::build(
            21,
            &ir_workload::roster::CLIENTS[..4],
            &ir_workload::roster::INTERMEDIATES[..4],
            &ir_workload::roster::SERVERS[..1],
            ir_workload::Calibration::default(),
            false,
        );
        let data = run_measurement_study(
            &sc,
            0,
            Schedule::measurement_study().spread(10),
            SessionConfig::paper_defaults(),
        );
        let ovh = overheads(&data);
        assert!(!ovh.is_empty());
        let mean = ovh.iter().sum::<f64>() / ovh.len() as f64;
        assert!(mean > 0.0, "probing cannot be free");
        assert!(mean < 0.3, "overhead implausibly high: {mean}");
        let r = report(&data);
        assert!(r.render().contains("probing overhead"));
    }
}
