//! Oracle headroom — how much of the *attainable* improvement the
//! paper's mechanisms capture.
//!
//! §6 estimates that "throughput diversity can effectively be taken
//! advantage of … approximately 40% of the time", and Fig 6 argues a
//! random set of ~10 captures most of the attainable improvement. With
//! a simulator we can measure the attainable directly: a hindsight
//! oracle that always takes the whole-file-optimal path on an isolated
//! replica. This experiment compares, per scheduled transfer:
//!
//! * the **oracle** improvement (best path over all 35 relays + direct),
//! * the **random-set k = 10** session outcome,
//! * the **static single relay** outcome (§2.2's configuration).

use crate::report::{csv, Check, Report};
use crate::runner::run_task_with;
use ir_core::{PathSpec, RandomSet, SessionConfig, SimTransport, StaticSingle};
use ir_simnet::time::{SimDuration, SimTime};
use ir_stats::Summary;
use ir_workload::{selection_study, Schedule};

/// Headroom results for one client.
#[derive(Debug, Clone)]
pub struct Headroom {
    /// Client name.
    pub client: String,
    /// Mean oracle improvement (%) — the attainable ceiling.
    pub oracle_pct: f64,
    /// Mean improvement of the random-set k=10 policy (%).
    pub random10_pct: f64,
    /// Mean improvement of a static single relay (%).
    pub static_pct: f64,
}

/// Computes oracle/random-set/static improvements for every client of
/// the §4 scenario.
pub fn run(seed: u64, transfers: u64) -> Vec<Headroom> {
    let scenario = selection_study(seed);
    let schedule = Schedule::selection_study().spread(transfers);
    let session = SessionConfig::paper_defaults();
    let horizon = SimDuration::from_secs(1200);

    scenario
        .clients
        .iter()
        .map(|&client| {
            let server = scenario.servers[0];

            // Oracle: hindsight-best whole-file rate at each instant.
            let mut transport = SimTransport::new(scenario.network.clone());
            let mut oracle_imps = Vec::new();
            for at in schedule.instants(SimTime::ZERO) {
                {
                    use ir_core::Transport as _;
                    let target = at.max(transport.now());
                    transport.network_mut().advance_until(target);
                }
                let direct = transport.oracle_throughput(
                    &PathSpec::direct(client, server),
                    session.file_bytes,
                    horizon,
                );
                let best_indirect = scenario
                    .relays
                    .iter()
                    .filter_map(|&v| {
                        transport.oracle_throughput(
                            &PathSpec::indirect(client, server, v),
                            session.file_bytes,
                            horizon,
                        )
                    })
                    .fold(f64::NEG_INFINITY, f64::max);
                if let Some(d) = direct {
                    if d > 0.0 && best_indirect.is_finite() {
                        let best = best_indirect.max(d);
                        oracle_imps.push((best - d) / d * 100.0);
                    }
                }
            }

            // Policies under the real session protocol.
            let mean_of = |records: Vec<ir_core::TransferRecord>| {
                let v: Vec<f64> = records
                    .iter()
                    .map(|r| r.improvement_pct())
                    .filter(|x| x.is_finite())
                    .collect();
                Summary::of(&v).map(|s| s.mean).unwrap_or(f64::NAN)
            };
            let random10 = mean_of(run_task_with(
                &scenario,
                client,
                server,
                &scenario.relays,
                Box::new(RandomSet::new(10, seed)),
                schedule,
                &session,
            ));
            let static_single = mean_of(run_task_with(
                &scenario,
                client,
                server,
                &scenario.relays[..1],
                Box::new(StaticSingle(scenario.relays[0])),
                schedule,
                &session,
            ));

            Headroom {
                client: scenario.name(client).to_string(),
                oracle_pct: Summary::of(&oracle_imps)
                    .map(|s| s.mean)
                    .unwrap_or(f64::NAN),
                random10_pct: random10,
                static_pct: static_single,
            }
        })
        .collect()
}

/// Builds the headroom report.
pub fn report(seed: u64, transfers: u64) -> Report {
    report_of(&run(seed, transfers))
}

/// Builds the headroom report from precomputed (possibly
/// cache-restored) study results.
pub fn report_of(results: &[Headroom]) -> Report {
    let mut table = ir_stats::TextTable::new()
        .title("attainable vs captured improvement (%)")
        .header(["client", "oracle", "random set k=10", "static single"]);
    let mut rows = Vec::new();
    for r in results {
        table.row([
            r.client.clone(),
            format!("{:+.1}", r.oracle_pct),
            format!("{:+.1}", r.random10_pct),
            format!("{:+.1}", r.static_pct),
        ]);
        rows.push(vec![
            r.client.clone(),
            format!("{:.2}", r.oracle_pct),
            format!("{:.2}", r.random10_pct),
            format!("{:.2}", r.static_pct),
        ]);
    }

    let capture: Vec<f64> = results
        .iter()
        .filter(|r| r.oracle_pct > 0.0)
        .map(|r| r.random10_pct / r.oracle_pct)
        .collect();
    let mean_capture = Summary::of(&capture).map(|s| s.mean).unwrap_or(0.0);
    let ordered = results.iter().all(|r| r.random10_pct <= r.oracle_pct + 5.0);

    let mut body = table.render();
    body.push_str(&format!(
        "\nrandom-set k=10 captures {:.0}% of the oracle-attainable improvement on average\n",
        mean_capture * 100.0
    ));

    Report {
        id: "headroom",
        title: "Oracle headroom: attainable vs captured".into(),
        body,
        csv: vec![(
            "headroom".into(),
            csv(
                &["client", "oracle_pct", "random10_pct", "static_pct"],
                &rows,
            ),
        )],
        checks: vec![
            // Fig 6's qualitative claim, quantified: a random 10-subset
            // captures "most" of the attainable improvement.
            Check::banded(
                "k=10 capture of oracle (fraction)",
                0.9,
                mean_capture,
                0.5,
                1.1,
            ),
            Check::banded(
                "oracle upper-bounds the policy (0/1)",
                1.0,
                if ordered { 1.0 } else { 0.0 },
                1.0,
                1.0,
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headroom_report_orders_sensibly() {
        let r = report(5, 8);
        assert!(r.render().contains("oracle"), "{}", r.render());
        // The oracle must not lose to the probing policy by any real
        // margin (it knows the future).
        assert!(r.all_pass(), "{}", r.render());
    }
}
