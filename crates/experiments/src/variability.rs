//! The conclusions' last claim: "Indirect routing can also be used to
//! decrease throughput variability experienced by clients."
//!
//! For each client we compare the coefficient of variation of the
//! *selecting* process's throughput series against the *control*
//! (direct-only) series over the same schedule. Selection hedges
//! against direct-path dips by switching to the (steadier, clamped)
//! overlay paths, so its series should vary less.

use crate::report::{csv, Check, Report};
use crate::runner::MeasurementData;
use ir_simnet::topology::NodeId;
use ir_stats::OnlineStats;
use std::collections::BTreeMap;

/// Per-client variability comparison.
#[derive(Debug, Clone, Copy)]
pub struct VariabilityRow {
    /// The client.
    pub client: NodeId,
    /// CoV of the control (direct-only) throughput series.
    pub direct_cov: f64,
    /// CoV of the selecting process's throughput series.
    pub selected_cov: f64,
}

/// Computes per-client CoVs over the measurement data.
pub fn rows(data: &MeasurementData) -> Vec<VariabilityRow> {
    let mut direct: BTreeMap<NodeId, OnlineStats> = BTreeMap::new();
    let mut selected: BTreeMap<NodeId, OnlineStats> = BTreeMap::new();
    for r in data.all_records() {
        if r.direct_throughput > 0.0 && r.direct_throughput.is_finite() {
            direct
                .entry(r.client)
                .or_default()
                .push(r.direct_throughput);
        }
        if r.selected_throughput > 0.0 && r.selected_throughput.is_finite() {
            selected
                .entry(r.client)
                .or_default()
                .push(r.selected_throughput);
        }
    }
    data.clients
        .iter()
        .filter_map(|&c| {
            let d = direct.get(&c)?;
            let s = selected.get(&c)?;
            if d.count() < 10 || s.count() < 10 {
                return None;
            }
            Some(VariabilityRow {
                client: c,
                direct_cov: d.cov(),
                selected_cov: s.cov(),
            })
        })
        .collect()
}

/// Builds the variability report.
///
/// A reproduction finding worth stating plainly: taken literally —
/// *every* client sees less variability — the claim does **not** hold.
/// Switching between two different-rate paths adds level-mixing
/// variance, so *stable* clients end up with a slightly noisier series.
/// The claim holds where it matters: for clients whose direct path is
/// highly variable, selection hedges the dips and cuts the CoV. The
/// checks encode that refined version.
pub fn report(data: &MeasurementData) -> Report {
    let rows_ = rows(data);
    assert!(!rows_.is_empty(), "no clients with enough samples");
    let classes = crate::table1::classify(data);
    let is_variable = |c: ir_simnet::topology::NodeId| {
        classes.variability.get(&c) == Some(&ir_workload::Variability::Variable)
    };

    let mut table = ir_stats::TextTable::new()
        .title("throughput variability: direct-only vs selecting process (CoV)")
        .header(["client", "class", "direct CoV", "selected CoV", "reduced?"]);
    let mut csv_rows = Vec::new();
    let mut reduced_all = 0usize;
    let mut var_total = 0usize;
    let mut var_reduced = 0usize;
    let mut var_dir_cov = 0.0;
    let mut var_sel_cov = 0.0;
    for r in &rows_ {
        let better = r.selected_cov < r.direct_cov;
        if better {
            reduced_all += 1;
        }
        let variable = is_variable(r.client);
        if variable {
            var_total += 1;
            var_dir_cov += r.direct_cov;
            var_sel_cov += r.selected_cov;
            if better {
                var_reduced += 1;
            }
        }
        table.row([
            data.name(r.client).to_string(),
            if variable {
                "variable".into()
            } else {
                "stable".to_string()
            },
            format!("{:.2}", r.direct_cov),
            format!("{:.2}", r.selected_cov),
            if better {
                "yes".into()
            } else {
                "no".to_string()
            },
        ]);
        csv_rows.push(vec![
            data.name(r.client).to_string(),
            if variable {
                "variable".into()
            } else {
                "stable".to_string()
            },
            format!("{:.4}", r.direct_cov),
            format!("{:.4}", r.selected_cov),
            better.to_string(),
        ]);
    }
    let reduced_all_pct = reduced_all as f64 / rows_.len() as f64 * 100.0;
    let var_reduced_pct = if var_total == 0 {
        f64::NAN
    } else {
        var_reduced as f64 / var_total as f64 * 100.0
    };

    let mut body = table.render();
    body.push_str(&format!(
        "\nall clients with reduced variability: {reduced_all_pct:.0}% (stable clients pay a small level-mixing cost)\n"
    ));
    if var_total > 0 {
        body.push_str(&format!(
            "variable clients with reduced variability: {var_reduced_pct:.0}% (mean CoV {:.2} -> {:.2})\n",
            var_dir_cov / var_total as f64,
            var_sel_cov / var_total as f64
        ));
    }

    let mut checks = vec![Check::info(
        "all clients with reduced variability (%)",
        100.0, // the paper's literal claim — reported, not gated
        reduced_all_pct,
    )];
    if var_total > 0 {
        checks.push(Check::banded(
            "variable clients with reduced variability (%)",
            100.0,
            var_reduced_pct,
            50.0,
            100.0,
        ));
        checks.push(Check::banded(
            "variable clients: mean CoV reduction",
            0.2,
            (var_dir_cov - var_sel_cov) / var_total as f64,
            0.0,
            10.0,
        ));
    }

    Report {
        id: "variability",
        title: "Variability reduction (conclusions, final claim)".into(),
        body,
        csv: vec![(
            "cov".into(),
            csv(
                &["client", "class", "direct_cov", "selected_cov", "reduced"],
                &csv_rows,
            ),
        )],
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_measurement_study;
    use ir_core::SessionConfig;
    use ir_workload::Schedule;

    #[test]
    fn variability_report_runs() {
        let sc = ir_workload::build(
            19,
            &ir_workload::roster::CLIENTS[..5],
            &ir_workload::roster::INTERMEDIATES[..5],
            &ir_workload::roster::SERVERS[..1],
            ir_workload::Calibration::default(),
            false,
        );
        let data = run_measurement_study(
            &sc,
            0,
            Schedule::measurement_study().spread(15),
            SessionConfig::paper_defaults(),
        );
        let r = report(&data);
        assert!(r.render().contains("variability"));
        assert!(!rows(&data).is_empty());
    }
}
