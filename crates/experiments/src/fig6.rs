//! Fig 6 — average throughput improvement vs random-set size.
//!
//! The paper's claim: "The curves for each of three clients level off
//! at about 10 nodes, suggesting that … a random set size of 10
//! suffices." We reproduce the sweep for Duke, Sweden, and Italy and
//! check the plateau: the k = 10 mean is within a small margin of the
//! full-set (k = 35) mean, while k = 1 sits well below it.

use crate::report::{csv, Check, Report};
use crate::runner::SelectionData;

/// Builds the Fig 6 report.
pub fn report(data: &SelectionData) -> Report {
    let ks = data.ks();
    assert!(!ks.is_empty(), "no selection runs");

    let mut table = ir_stats::TextTable::new()
        .title("avg. throughput improvement over direct path (%)")
        .header(
            std::iter::once("k".to_string())
                .chain(data.clients.iter().map(|&c| data.name(c).to_string()))
                .collect::<Vec<_>>(),
        );
    let mut rows: Vec<Vec<String>> = Vec::new();

    for &k in &ks {
        let mut row = vec![k.to_string()];
        let mut csv_row = vec![k.to_string()];
        for &c in &data.clients {
            let m = data.mean_improvement_pct(c, k);
            row.push(m.map(|v| format!("{v:+.1}")).unwrap_or_else(|| "-".into()));
            csv_row.push(m.map(|v| format!("{v:.3}")).unwrap_or_default());
        }
        table.row(row);
        rows.push(csv_row);
    }

    let mut body = table.render();

    // Plateau checks per client (averaged across clients for the
    // headline).
    let kmax = *ks.last().expect("non-empty");
    let k_knee = ks.iter().copied().find(|&k| k >= 10).unwrap_or(kmax);
    let k1 = ks[0];
    let mut knee_ratio_sum = 0.0;
    let mut gain_sum = 0.0;
    let mut n = 0.0;
    for &c in &data.clients {
        if let (Some(a), Some(b), Some(lo)) = (
            data.mean_improvement_pct(c, k_knee),
            data.mean_improvement_pct(c, kmax),
            data.mean_improvement_pct(c, k1),
        ) {
            if b > 0.0 {
                knee_ratio_sum += a / b;
                gain_sum += b - lo;
                n += 1.0;
            }
        }
    }
    let knee_ratio = if n > 0.0 { knee_ratio_sum / n } else { 0.0 };
    let k1_gain = if n > 0.0 { gain_sum / n } else { 0.0 };

    body.push_str(&format!(
        "\nmean(k={k_knee}) / mean(k={kmax}) across clients: {knee_ratio:.2}\n\
         mean(k={kmax}) - mean(k={k1}) across clients:  {k1_gain:+.1} pp\n"
    ));

    let header: Vec<String> = std::iter::once("k".to_string())
        .chain(data.clients.iter().map(|&c| data.name(c).to_string()))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();

    Report {
        id: "fig6",
        title: "Fig 6: improvement vs random-set size".into(),
        body,
        csv: vec![("curves".into(), csv(&header_refs, &rows))],
        checks: vec![
            // Plateau: k≈10 captures most of the full-set improvement.
            Check::banded(
                "plateau ratio mean(k~10)/mean(k=max)",
                1.0,
                knee_ratio,
                0.75,
                1.35,
            ),
            // Rising curve: going from k=1 to the full set helps.
            Check::banded(
                "full-set gain over k=1 (pp)",
                20.0, // qualitative: the curves rise substantially
                k1_gain,
                2.0,
                1e6,
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_selection_study, Scale};
    use ir_core::SessionConfig;
    use ir_workload::Schedule;

    #[test]
    fn fig6_renders_sweep() {
        let sc = ir_workload::build(
            41,
            &ir_workload::roster::SELECTION_CLIENTS[..2],
            &ir_workload::roster::INTERMEDIATES[..6],
            &ir_workload::roster::SERVERS[..1],
            ir_workload::Calibration::default(),
            true,
        );
        let data = run_selection_study(
            &sc,
            &[1, 3, 6],
            Schedule::selection_study().truncated(12),
            SessionConfig::paper_defaults(),
            5,
        );
        let r = report(&data);
        assert!(r.render().contains("random-set size"));
        let _ = Scale::Quick;
    }
}
