//! Megaflow — the partition-sharded engine's scale artefact.
//!
//! A synthetic fan-in datacenter workload built to stress exactly the
//! structure the sharded engine exploits: `racks` top-of-rack switches,
//! each with `hosts_per_rack` hosts behind a per-flow access link and
//! one shared `Capacity` uplink to a single origin. Every congestion
//! component is one rack (the access links are `PerFlow` and fold into
//! flow caps), so the engine's union–find decomposes the global
//! allocation into `racks` independent solves of
//! `hosts_per_rack × flows_per_host` flows each.
//!
//! At [`MegaflowConfig::paper`] scale this is **1.01M concurrent
//! transfers over a 10,401-node roster** — far past anything the
//! paper's own studies need, which is the point: the artefact proves
//! the engine completes it and reports the decomposition stats
//! (boundaries, component solves, completion batches). Flows within a
//! rack wave share one uplink equally and therefore finish in a single
//! batched boundary, so the whole 1M-flow study costs only
//! `≈ racks × waves` solve boundaries.
//!
//! Everything in [`MegaflowResult`] is a pure function of
//! `(seed, config)` — wall-clock timings live in the bench gate
//! (BENCH_PR7.json), never in the artefact, so the study caches and
//! replays byte-identically.

use crate::report::{csv, Check, Report};
use ir_simnet::prelude::*;
use ir_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Geometry and rates of a megaflow run. All fields are semantic
/// inputs: each one is hashed into the study fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MegaflowConfig {
    /// Top-of-rack switches; one congestion component each.
    pub racks: u32,
    /// Hosts behind each ToR (per-flow access links).
    pub hosts_per_rack: u32,
    /// Concurrent transfers each host runs.
    pub flows_per_host: u32,
    /// Arrival waves: flow `j` of a host starts at wave `j % waves`.
    pub waves: u32,
    /// Milliseconds between wave starts.
    pub wave_stagger_ms: u64,
    /// Bytes per transfer.
    pub file_bytes: u64,
    /// Host access-link rate, bytes/s (`PerFlow`; deliberately
    /// non-binding so the rack uplink is the bottleneck).
    pub host_rate: u64,
    /// Base ToR→origin uplink capacity, bytes/s. Each rack gets a
    /// seeded jitter on top so completion batches land at distinct
    /// instants per rack.
    pub rack_base_rate: u64,
}

impl MegaflowConfig {
    /// The headline scale: 400 racks × 25 hosts × 101 flows =
    /// 1,010,000 concurrent transfers over 10,401 nodes.
    pub fn paper() -> Self {
        MegaflowConfig {
            racks: 400,
            hosts_per_rack: 25,
            flows_per_host: 101,
            waves: 2,
            wave_stagger_ms: 10_000,
            file_bytes: 2_000_000,
            host_rate: 1_000_000_000,
            rack_base_rate: 50_000_000,
        }
    }

    /// A seconds-scale geometry for tests and the quick sweep: 8 racks
    /// × 4 hosts × 5 flows = 160 transfers over 41 nodes, same shape.
    pub fn mini() -> Self {
        MegaflowConfig {
            racks: 8,
            hosts_per_rack: 4,
            flows_per_host: 5,
            waves: 2,
            wave_stagger_ms: 10_000,
            file_bytes: 2_000_000,
            host_rate: 1_000_000_000,
            rack_base_rate: 50_000_000,
        }
    }

    /// The bench-gate geometry: big enough that the sharded engine's
    /// parallel threshold engages and per-boundary solve work dwarfs
    /// thread-spawn overhead (32,768 flows, 1,024-flow components),
    /// small enough to time repeatedly.
    pub fn gate() -> Self {
        MegaflowConfig {
            racks: 32,
            hosts_per_rack: 32,
            flows_per_host: 32,
            waves: 2,
            wave_stagger_ms: 10_000,
            file_bytes: 2_000_000,
            host_rate: 1_000_000_000,
            rack_base_rate: 50_000_000,
        }
    }

    /// Total concurrent transfers.
    pub fn total_flows(&self) -> u64 {
        self.racks as u64 * self.hosts_per_rack as u64 * self.flows_per_host as u64
    }

    /// Roster size: hosts + ToRs + the origin.
    pub fn total_nodes(&self) -> u64 {
        self.racks as u64 * self.hosts_per_rack as u64 + self.racks as u64 + 1
    }
}

/// Deterministic outcome of a megaflow run. Engine-mode invariant (the
/// differential suite's guarantee), so the sweep caches one copy
/// regardless of `--threads`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MegaflowResult {
    /// The geometry that produced this result.
    pub cfg: MegaflowConfig,
    /// Nodes in the topology.
    pub nodes: u64,
    /// Flows started / completed (must match).
    pub flows_started: u64,
    /// Flows that ran to completion.
    pub flows_completed: u64,
    /// Engine solve boundaries crossed.
    pub boundaries: u64,
    /// Full (from-scratch) allocation solves.
    pub full_solves: u64,
    /// Boundary-advance solves that reused the incremental state.
    pub incremental_solves: u64,
    /// Sum over solves of the component count — the decomposition's
    /// work units.
    pub component_solves: u64,
    /// Distinct completion instants (batched rack finishes).
    pub completion_batches: u64,
    /// Finish time of the last flow, microseconds.
    pub makespan_us: u64,
}

impl MegaflowResult {
    /// Mean congestion components per allocation solve.
    pub fn components_per_solve(&self) -> f64 {
        let solves = self.full_solves + self.incremental_solves;
        if solves == 0 {
            0.0
        } else {
            self.component_solves as f64 / solves as f64
        }
    }
}

/// Runs the megaflow study: builds the fan-in topology, launches every
/// wave, and drives the engine to quiescence under `engine`.
///
/// `seed` jitters each rack's uplink capacity (±25% around
/// `rack_base_rate`) so rack batches complete at distinct, seeded
/// instants.
pub fn run(
    seed: u64,
    cfg: &MegaflowConfig,
    engine: EngineMode,
    tel: Option<Arc<Telemetry>>,
) -> MegaflowResult {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4D45_4741);
    let mut topo = Topology::new();
    let origin = topo.add_node("origin".to_string(), NodeKind::Server);
    let mut rack_links = Vec::with_capacity(cfg.racks as usize);
    let mut routes = Vec::with_capacity((cfg.racks * cfg.hosts_per_rack) as usize);
    for r in 0..cfg.racks {
        let tor = topo.add_node(format!("tor{r}"), NodeKind::Intermediate);
        let up = topo.add_link_shared(tor, origin, SimDuration::from_millis(1), Sharing::Capacity);
        rack_links.push(up);
        for h in 0..cfg.hosts_per_rack {
            let host = topo.add_node(format!("h{r}.{h}"), NodeKind::Client);
            topo.add_link_shared(host, tor, SimDuration::from_millis(1), Sharing::PerFlow);
            routes.push(topo.route(&[host, tor, origin]).expect("fan-in route"));
        }
    }
    // Seeded per-rack capacity jitter, drawn before network
    // construction so the draw order is fixed by the config alone.
    let rack_rates: Vec<f64> = (0..cfg.racks)
        .map(|_| cfg.rack_base_rate as f64 * rng.gen_range(0.75..1.25))
        .collect();

    let mut net = Network::new(topo, cfg.host_rate as f64);
    for (&l, &rate) in rack_links.iter().zip(&rack_rates) {
        net.set_link_process(l, Box::new(ConstantProcess::new(rate)));
    }
    net.set_engine_mode(engine);
    net.set_telemetry(tel);

    let mut completions: Vec<CompletedFlow> = Vec::new();
    let mut flows_started = 0u64;
    for wave in 0..cfg.waves {
        completions
            .extend(net.advance_until(SimTime::from_millis(wave as u64 * cfg.wave_stagger_ms)));
        for route in &routes {
            for j in 0..cfg.flows_per_host {
                if j % cfg.waves == wave {
                    net.start_flow(route.clone(), cfg.file_bytes, Box::new(NoCap));
                    flows_started += 1;
                }
            }
        }
    }
    // Quiescence horizon: the slowest rack (max jitter 1.25 ⇒ min 0.75)
    // at full load, with generous slack; the engine stops advancing
    // once the last flow completes, so slack costs nothing.
    let worst_secs = (cfg.waves as u64 * cfg.wave_stagger_ms).div_ceil(1000)
        + 4 * (cfg.file_bytes * cfg.hosts_per_rack as u64 * cfg.flows_per_host as u64)
            .div_ceil(cfg.rack_base_rate.max(1));
    completions.extend(net.advance_until(SimTime::from_secs(worst_secs)));

    let mut finish_times: Vec<u64> = completions.iter().map(|c| c.finished.0).collect();
    finish_times.sort_unstable();
    let makespan_us = finish_times
        .last()
        .map(|&t| SimTime(t).as_micros())
        .unwrap_or(0);
    finish_times.dedup();

    let stats = net.stats();
    MegaflowResult {
        cfg: *cfg,
        nodes: cfg.total_nodes(),
        flows_started,
        flows_completed: stats.flows_completed,
        boundaries: stats.boundaries,
        full_solves: stats.full_solves,
        incremental_solves: stats.incremental_solves,
        component_solves: stats.component_solves,
        completion_batches: finish_times.len() as u64,
        makespan_us,
    }
}

/// Runs the megaflow study at its scale's geometry and renders the
/// report (the CLI path).
pub fn report(seed: u64, cfg: &MegaflowConfig, engine: EngineMode) -> Report {
    report_of(&run(seed, cfg, engine, None))
}

/// Renders the report from a (possibly cache-restored) result.
pub fn report_of(r: &MegaflowResult) -> Report {
    let mut table = ir_stats::TextTable::new()
        .title("megaflow: partition-sharded engine at scale")
        .header(["metric", "value"]);
    let rows_src: Vec<(&str, String)> = vec![
        ("racks", r.cfg.racks.to_string()),
        ("hosts", (r.cfg.racks * r.cfg.hosts_per_rack).to_string()),
        ("nodes", r.nodes.to_string()),
        ("flows started", r.flows_started.to_string()),
        ("flows completed", r.flows_completed.to_string()),
        ("boundaries", r.boundaries.to_string()),
        ("full solves", r.full_solves.to_string()),
        ("incremental solves", r.incremental_solves.to_string()),
        ("component solves", r.component_solves.to_string()),
        (
            "components per solve",
            format!("{:.1}", r.components_per_solve()),
        ),
        ("completion batches", r.completion_batches.to_string()),
        ("makespan (s)", format!("{:.1}", r.makespan_us as f64 / 1e6)),
    ];
    let mut rows = Vec::new();
    for (k, v) in &rows_src {
        table.row([k.to_string(), v.clone()]);
        rows.push(vec![k.to_string(), v.clone()]);
    }

    // Rack waves complete in batches: the whole study must cost on the
    // order of racks × waves boundaries, not one per flow.
    let expected_batches = (r.cfg.racks * r.cfg.waves) as f64;
    Report {
        id: "megaflow",
        title: format!(
            "Megaflow: {} flows / {} nodes through the sharded engine",
            r.flows_started, r.nodes
        ),
        body: table.render(),
        csv: vec![("stats".into(), csv(&["metric", "value"], &rows))],
        checks: vec![
            Check::banded(
                "flows completed / started",
                1.0,
                if r.flows_started == 0 {
                    0.0
                } else {
                    r.flows_completed as f64 / r.flows_started as f64
                },
                1.0,
                1.0,
            ),
            Check::banded(
                "completion batches / (racks × waves)",
                1.0,
                r.completion_batches as f64 / expected_batches,
                0.5,
                1.5,
            ),
            // The decomposition must actually engage: one component per
            // rack on every solve that matters.
            Check::banded(
                "components per solve / racks",
                1.0,
                r.components_per_solve() / r.cfg.racks as f64,
                0.4,
                1.1,
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pinned canary for the mini geometry at seed 2007 — the sweep's
    /// quick-scale study. If this moves, the engine's boundary
    /// accounting changed and BENCH_PR7's canary needs regenerating.
    #[test]
    fn mini_canary_and_engine_invariance() {
        let cfg = MegaflowConfig::mini();
        let inc = run(2007, &cfg, EngineMode::Incremental, None);
        assert_eq!(inc.flows_started, cfg.total_flows());
        assert_eq!(inc.flows_completed, inc.flows_started);
        assert_eq!(
            inc.boundaries,
            crate::bench_gate::PINNED_MEGAFLOW_MINI_BOUNDARIES
        );
        // Each rack×wave batch completes at one instant.
        assert_eq!(inc.completion_batches, (cfg.racks * cfg.waves) as u64);

        // Reference reports no decomposition counter (it always solves
        // the whole problem); everything else must match bitwise.
        let refr = run(2007, &cfg, EngineMode::Reference, None);
        assert_eq!(refr.component_solves, 0);
        let mut refr_cmp = refr.clone();
        refr_cmp.component_solves = inc.component_solves;
        assert_eq!(refr_cmp, inc, "Reference diverged from incremental");

        let sh = run(2007, &cfg, EngineMode::Sharded { threads: 4 }, None);
        assert_eq!(sh, inc, "Sharded diverged from incremental");
    }

    #[test]
    fn seed_moves_the_makespan_but_not_the_structure() {
        let cfg = MegaflowConfig::mini();
        let a = run(1, &cfg, EngineMode::Incremental, None);
        let b = run(2, &cfg, EngineMode::Incremental, None);
        assert_ne!(a.makespan_us, b.makespan_us);
        assert_eq!(a.flows_completed, b.flows_completed);
        assert_eq!(a.completion_batches, b.completion_batches);
    }

    #[test]
    fn report_passes_its_checks() {
        let r = report(2007, &MegaflowConfig::mini(), EngineMode::Incremental);
        assert!(r.all_pass(), "{}", r.render());
        assert!(r.render().contains("megaflow"), "{}", r.render());
    }
}
