//! The dependency-aware sweep: every artefact of the paper through the
//! `ir-artifact` scheduler with a content-addressed cache.
//!
//! [`full_plan`] declares the whole evaluation as a two-layer DAG —
//! studies feeding artefacts:
//!
//! | study | artefacts |
//! |---|---|
//! | measurement (§2.2 planetlab) | fig1 fig2 fig3 fig4 fig5 table1 table2 variability overhead |
//! | selection (§4) | fig6 table3 |
//! | sites (per destination site) | sites |
//! | headroom (oracle replica) | headroom |
//! | faults (overlay outages) | faults |
//! | megaflow (sharded engine at scale) | megaflow |
//! | striping (striped vs raced sessions) | striping |
//! | tournament/`<policy>` (one study **per policy**) | tournament |
//!
//! Study fingerprints hash **every input that determines the output**:
//! the seed, rosters, [`Calibration`], [`Schedule`], [`SessionConfig`],
//! sweep constants (`ks`, MTBFs), the generated fault plans, and
//! [`CODEC_VERSION`]. Artefact fingerprints hash the artefact name, its
//! per-artefact code-version salt ([`SALTS`] — bump when render logic
//! changes), and its study fingerprints. Same inputs ⇒ same key ⇒ a
//! warm cache reproduces every artefact byte-for-byte without running a
//! single study; any changed input misses cleanly.

use crate::codec;
use crate::report::Report;
use crate::runner::{
    measurement_study_default_traced, run_measurement_study, selection_study_default_traced,
    MeasurementData, Scale, SelectionData, FIG6_KS,
};
use crate::{
    faults, fig1, fig2, fig3, fig4, fig5, fig6, headroom, megaflow, overhead, sites, soak,
    striping, table1, table2, table3, tournament, variability,
};
use ir_artifact::{
    execute, ArtefactOutput, ArtefactSpec, ArtifactCache, ExecReport, Fingerprint, StableHash,
    StableHasher, StudySpec,
};
use ir_core::SessionConfig;
use ir_simnet::time::SimDuration;
use ir_simnet::topology::LinkId;
use ir_telemetry::trace::{Event, EventKind};
use ir_telemetry::Telemetry;
use ir_workload::roster::{ClientSite, RelaySite, ServerSite};
use ir_workload::{Calibration, Schedule};
use std::any::Any;
use std::path::Path;
use std::sync::Arc;

/// Version of the study byte encodings in [`crate::codec`]. Part of
/// every study fingerprint: bumping it retires every cached study
/// (they would no longer decode) instead of misreading them.
///
/// v2: [`ir_core::PathSpec`] widened from `via: Option<NodeId>` to a
/// hop chain — path encoding is now hop count + hops.
pub const CODEC_VERSION: u32 = 2;

/// Per-artefact code-version salts. Bump an entry whenever that
/// artefact's render logic changes in a way that alters its output —
/// the fingerprint moves and stale cached bundles stop matching.
pub const SALTS: &[(&str, u64)] = &[
    ("fig1", 1),
    ("fig2", 1),
    ("fig3", 1),
    ("fig4", 1),
    ("fig5", 1),
    ("fig6", 1),
    ("table1", 1),
    ("table2", 1),
    ("table3", 1),
    ("variability", 1),
    ("overhead", 1),
    ("sites", 1),
    ("headroom", 1),
    ("faults", 1),
    ("megaflow", 1),
    ("striping", 1),
    ("tournament", 1),
    ("soak", 1),
];

fn salt_of(name: &str) -> u64 {
    SALTS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|&(_, s)| s)
        .unwrap_or_else(|| panic!("artefact {name:?} has no entry in sweep::SALTS"))
}

/// A declared sweep: studies plus the artefacts consuming them.
pub struct SweepPlan {
    /// Every study any artefact may demand.
    pub studies: Vec<StudySpec>,
    /// Artefacts in emission order.
    pub artefacts: Vec<ArtefactSpec>,
}

fn artefact_fingerprint(name: &str, deps: &[Fingerprint]) -> Fingerprint {
    let mut h = StableHasher::new();
    "artefact".stable_hash(&mut h);
    CODEC_VERSION.stable_hash(&mut h);
    name.stable_hash(&mut h);
    salt_of(name).stable_hash(&mut h);
    deps.stable_hash(&mut h);
    h.finish()
}

fn output_of(r: &Report) -> ArtefactOutput {
    ArtefactOutput {
        pass: r.all_pass(),
        text: r.render(),
        files: r
            .csv
            .iter()
            .map(|(name, contents)| {
                (
                    format!("{}_{}.csv", r.id, name),
                    contents.as_bytes().to_vec(),
                )
            })
            .collect(),
    }
}

#[allow(clippy::too_many_arguments)] // fingerprint covers every cache-relevant input explicitly
fn measurement_fingerprint(
    seed: u64,
    clients: &[ClientSite],
    relays: &[RelaySite],
    servers: &[ServerSite],
    cal: &Calibration,
    force_low_med: bool,
    server_index: usize,
    schedule: Schedule,
    session: &SessionConfig,
) -> Fingerprint {
    let mut h = StableHasher::new();
    "study/measurement".stable_hash(&mut h);
    CODEC_VERSION.stable_hash(&mut h);
    seed.stable_hash(&mut h);
    clients.stable_hash(&mut h);
    relays.stable_hash(&mut h);
    servers.stable_hash(&mut h);
    cal.stable_hash(&mut h);
    force_low_med.stable_hash(&mut h);
    server_index.stable_hash(&mut h);
    schedule.stable_hash(&mut h);
    session.stable_hash(&mut h);
    h.finish()
}

fn measurement_spec(
    name: String,
    fingerprint: Fingerprint,
    run: impl FnOnce() -> MeasurementData + 'static,
) -> StudySpec {
    StudySpec {
        name,
        fingerprint,
        run: Box::new(move || Arc::new(run()) as Arc<dyn Any + Send + Sync>),
        encode: Box::new(|out| {
            codec::encode_measurement(out.downcast_ref().expect("measurement study output"))
        }),
        decode: Box::new(|bytes| {
            codec::decode_measurement(bytes).map(|d| Arc::new(d) as Arc<dyn Any + Send + Sync>)
        }),
    }
}

fn measurement_report_fn(name: &str) -> fn(&MeasurementData) -> Report {
    match name {
        "fig1" => fig1::report,
        "fig2" => fig2::report,
        "fig3" => fig3::report,
        "fig4" => fig4::report,
        "fig5" => fig5::report,
        "table1" => table1::report,
        "table2" => table2::report,
        "variability" => variability::report,
        "overhead" => overhead::report,
        other => panic!("{other:?} is not a measurement artefact"),
    }
}

fn measurement_artefact(name: &'static str, dep: Fingerprint) -> ArtefactSpec {
    let render = measurement_report_fn(name);
    ArtefactSpec {
        name: name.to_string(),
        fingerprint: artefact_fingerprint(name, &[dep]),
        deps: vec![dep],
        render: Box::new(move |inputs| {
            output_of(&render(inputs[0].downcast_ref().expect("measurement data")))
        }),
    }
}

fn selection_artefact(name: &'static str, dep: Fingerprint) -> ArtefactSpec {
    let render: fn(&SelectionData) -> Report = match name {
        "fig6" => fig6::report,
        "table3" => table3::report,
        other => panic!("{other:?} is not a selection artefact"),
    };
    ArtefactSpec {
        name: name.to_string(),
        fingerprint: artefact_fingerprint(name, &[dep]),
        deps: vec![dep],
        render: Box::new(move |inputs| {
            output_of(&render(inputs[0].downcast_ref().expect("selection data")))
        }),
    }
}

/// Transfers per pair the `sites` study uses at a scale (shared by the
/// `sites` CLI artefact and the sweep).
pub fn sites_transfers(scale: Scale) -> u64 {
    match scale {
        Scale::Quick => 8,
        Scale::Paper => 25,
    }
}

/// Transfers the `headroom` study uses at a scale.
pub fn headroom_transfers(scale: Scale) -> u64 {
    match scale {
        Scale::Quick => 30,
        Scale::Paper => 120,
    }
}

/// Megaflow geometry at a scale (shared by the `megaflow` CLI artefact
/// and the sweep): the seconds-scale mini fan-in at Quick, the
/// million-flow headline geometry at Paper.
pub fn megaflow_config(scale: Scale) -> megaflow::MegaflowConfig {
    match scale {
        Scale::Quick => megaflow::MegaflowConfig::mini(),
        Scale::Paper => megaflow::MegaflowConfig::paper(),
    }
}

/// Soak geometry at a scale (shared by the `soak` CLI artefact and
/// [`soak_plan`]): 250 concurrent clients at Quick, the 2000-client
/// headline herd at Paper.
pub fn soak_config(scale: Scale) -> soak::SoakConfig {
    match scale {
        Scale::Quick => soak::SoakConfig::quick(),
        Scale::Paper => soak::SoakConfig::paper(),
    }
}

/// The soak as its own fingerprinted plan: one study (the real-socket
/// load run) feeding one artefact. Deliberately **not** part of
/// [`full_plan`]: soak results measure this machine's wall clock, so
/// folding them into the sweep would break the byte-identical
/// cold/warm/cacheless replays CI diffs. A cached soak artefact is a
/// *record* of the run that produced it, keyed on `(seed, config,
/// codec version)` like every other study.
pub fn soak_plan(seed: u64, scale: Scale) -> SweepPlan {
    let cfg = soak_config(scale);
    let fp = {
        let mut h = StableHasher::new();
        "study/soak".stable_hash(&mut h);
        CODEC_VERSION.stable_hash(&mut h);
        seed.stable_hash(&mut h);
        (cfg.clients as u64).stable_hash(&mut h);
        cfg.file_bytes.stable_hash(&mut h);
        cfg.probe_bytes.stable_hash(&mut h);
        cfg.direct_rate.stable_hash(&mut h);
        cfg.relay_rate.stable_hash(&mut h);
        (cfg.workers as u64).stable_hash(&mut h);
        cfg.stagger_ms.stable_hash(&mut h);
        h.finish()
    };
    let study = StudySpec {
        name: format!("soak(seed={seed},{scale:?})"),
        fingerprint: fp,
        run: Box::new(move || {
            Arc::new(soak::run(
                &cfg,
                ir_relay::RelayMode::Event {
                    workers: cfg.workers as usize,
                },
            )) as Arc<dyn Any + Send + Sync>
        }),
        encode: Box::new(|out| {
            codec::encode_soak(out.downcast_ref::<soak::SoakResult>().expect("soak output"))
        }),
        decode: Box::new(|bytes| {
            codec::decode_soak(bytes).map(|d| Arc::new(d) as Arc<dyn Any + Send + Sync>)
        }),
    };
    let artefact = ArtefactSpec {
        name: "soak".into(),
        fingerprint: artefact_fingerprint("soak", &[fp]),
        deps: vec![fp],
        render: Box::new(|inputs| {
            output_of(&soak::report_of(
                inputs[0]
                    .downcast_ref::<soak::SoakResult>()
                    .expect("soak result"),
            ))
        }),
    };
    SweepPlan {
        studies: vec![study],
        artefacts: vec![artefact],
    }
}

/// The full evaluation: the six shared studies plus one tournament
/// study per policy, feeding sixteen artefacts. `tel` is
/// shared by the measurement/selection studies (simnet, session, and
/// runner layers report into it), exactly as the per-artefact CLI paths
/// do.
pub fn full_plan(seed: u64, scale: Scale, tel: Option<Arc<Telemetry>>) -> SweepPlan {
    let roster = ir_workload::roster::CLIENTS;
    let relays = ir_workload::roster::INTERMEDIATES;
    let servers = ir_workload::roster::SERVERS;
    let cal = Calibration::default();
    let session = SessionConfig::paper_defaults();

    // §2.2 measurement study (shared by nine artefacts).
    let m_schedule = Schedule::measurement_study().spread(scale.measurement_transfers());
    let m_fp = measurement_fingerprint(
        seed, roster, relays, servers, &cal, false, 0, m_schedule, &session,
    );
    let m_tel = tel.clone();
    let measurement = measurement_spec(
        format!("measurement(seed={seed},{scale:?})"),
        m_fp,
        move || measurement_study_default_traced(seed, scale, m_tel),
    );

    // §4 selection study (shared by fig6 + table3).
    let s_schedule = Schedule::selection_study().spread(scale.selection_transfers());
    let s_fp = {
        let mut h = StableHasher::new();
        "study/selection".stable_hash(&mut h);
        CODEC_VERSION.stable_hash(&mut h);
        seed.stable_hash(&mut h);
        ir_workload::roster::SELECTION_CLIENTS.stable_hash(&mut h);
        ir_workload::roster::selection_relays().stable_hash(&mut h);
        servers[..1].stable_hash(&mut h);
        cal.stable_hash(&mut h);
        true.stable_hash(&mut h); // force_low_med
        FIG6_KS
            .iter()
            .map(|&k| k as u64)
            .collect::<Vec<_>>()
            .stable_hash(&mut h);
        s_schedule.stable_hash(&mut h);
        session.stable_hash(&mut h);
        h.finish()
    };
    let s_tel = tel.clone();
    let selection = StudySpec {
        name: format!("selection(seed={seed},{scale:?})"),
        fingerprint: s_fp,
        run: Box::new(move || {
            Arc::new(selection_study_default_traced(seed, scale, FIG6_KS, s_tel))
                as Arc<dyn Any + Send + Sync>
        }),
        encode: Box::new(|out| {
            codec::encode_selection(out.downcast_ref().expect("selection study output"))
        }),
        decode: Box::new(|bytes| {
            codec::decode_selection(bytes).map(|d| Arc::new(d) as Arc<dyn Any + Send + Sync>)
        }),
    };

    // Per-site study (all four destinations).
    let site_transfers = sites_transfers(scale);
    let sites_fp = {
        let mut h = StableHasher::new();
        "study/sites".stable_hash(&mut h);
        CODEC_VERSION.stable_hash(&mut h);
        seed.stable_hash(&mut h);
        roster.stable_hash(&mut h);
        relays.stable_hash(&mut h);
        servers.stable_hash(&mut h);
        cal.stable_hash(&mut h);
        site_transfers.stable_hash(&mut h);
        Schedule::measurement_study()
            .spread(site_transfers)
            .stable_hash(&mut h);
        session.stable_hash(&mut h);
        h.finish()
    };
    let sites_study = StudySpec {
        name: format!("sites(seed={seed},transfers={site_transfers})"),
        fingerprint: sites_fp,
        run: Box::new(move || {
            Arc::new(sites::run(seed, site_transfers)) as Arc<dyn Any + Send + Sync>
        }),
        encode: Box::new(|out| {
            codec::encode_sites(
                out.downcast_ref::<Vec<sites::SiteResult>>()
                    .expect("sites output"),
            )
        }),
        decode: Box::new(|bytes| {
            codec::decode_sites(bytes).map(|d| Arc::new(d) as Arc<dyn Any + Send + Sync>)
        }),
    };

    // Oracle headroom study.
    let hr_transfers = headroom_transfers(scale);
    let hr_fp = {
        let mut h = StableHasher::new();
        "study/headroom".stable_hash(&mut h);
        CODEC_VERSION.stable_hash(&mut h);
        seed.stable_hash(&mut h);
        ir_workload::roster::SELECTION_CLIENTS.stable_hash(&mut h);
        ir_workload::roster::selection_relays().stable_hash(&mut h);
        servers[..1].stable_hash(&mut h);
        cal.stable_hash(&mut h);
        hr_transfers.stable_hash(&mut h);
        Schedule::selection_study()
            .spread(hr_transfers)
            .stable_hash(&mut h);
        session.stable_hash(&mut h);
        SimDuration::from_secs(1200).stable_hash(&mut h); // oracle horizon
        10u64.stable_hash(&mut h); // random-set k
        h.finish()
    };
    let headroom_study = StudySpec {
        name: format!("headroom(seed={seed},transfers={hr_transfers})"),
        fingerprint: hr_fp,
        run: Box::new(move || {
            Arc::new(headroom::run(seed, hr_transfers)) as Arc<dyn Any + Send + Sync>
        }),
        encode: Box::new(|out| {
            codec::encode_headroom(
                out.downcast_ref::<Vec<headroom::Headroom>>()
                    .expect("headroom output"),
            )
        }),
        decode: Box::new(|bytes| {
            codec::decode_headroom(bytes).map(|d| Arc::new(d) as Arc<dyn Any + Send + Sync>)
        }),
    };

    // Fault-plane sweep. The generated fault plans are pure functions
    // of (scenario, spec, seed); hash the plans themselves so the
    // fingerprint covers fault pressure directly.
    let f_schedule = Schedule::measurement_study().spread(match scale {
        Scale::Quick => 12,
        Scale::Paper => 40,
    });
    let faults_fp = {
        let mut h = StableHasher::new();
        "study/faults".stable_hash(&mut h);
        CODEC_VERSION.stable_hash(&mut h);
        seed.stable_hash(&mut h);
        roster[..3].stable_hash(&mut h);
        relays[..6].stable_hash(&mut h);
        servers[..1].stable_hash(&mut h);
        cal.stable_hash(&mut h);
        faults::MTBF_SECS.stable_hash(&mut h);
        faults::KS
            .iter()
            .map(|&k| k as u64)
            .collect::<Vec<_>>()
            .stable_hash(&mut h);
        f_schedule.stable_hash(&mut h);
        faults::failover_session().stable_hash(&mut h);
        let scenario = faults::sweep_scenario(seed);
        let horizon = f_schedule.span() + SimDuration::from_secs(3600);
        for &mtbf in faults::MTBF_SECS {
            if mtbf != 0 {
                ir_workload::overlay_fault_plan(
                    &scenario,
                    &faults::fault_spec(mtbf, horizon),
                    seed ^ 0xFA17,
                )
                .stable_hash(&mut h);
            }
        }
        h.finish()
    };
    let faults_study = StudySpec {
        name: format!("faults(seed={seed},{scale:?})"),
        fingerprint: faults_fp,
        run: Box::new(move || Arc::new(faults::run(seed, scale)) as Arc<dyn Any + Send + Sync>),
        encode: Box::new(|out| {
            codec::encode_faults(
                out.downcast_ref::<Vec<faults::FaultCell>>()
                    .expect("faults output"),
            )
        }),
        decode: Box::new(|bytes| {
            codec::decode_faults(bytes).map(|d| Arc::new(d) as Arc<dyn Any + Send + Sync>)
        }),
    };

    // Megaflow: the sharded engine's scale study. Engine-mode
    // invariant (the differential suite's guarantee), so the engine is
    // an execution knob here, not a fingerprint input — one cached
    // result serves every `--threads` setting.
    let mega_cfg = megaflow_config(scale);
    let mega_fp = {
        let mut h = StableHasher::new();
        "study/megaflow".stable_hash(&mut h);
        CODEC_VERSION.stable_hash(&mut h);
        seed.stable_hash(&mut h);
        (mega_cfg.racks as u64).stable_hash(&mut h);
        (mega_cfg.hosts_per_rack as u64).stable_hash(&mut h);
        (mega_cfg.flows_per_host as u64).stable_hash(&mut h);
        (mega_cfg.waves as u64).stable_hash(&mut h);
        mega_cfg.wave_stagger_ms.stable_hash(&mut h);
        mega_cfg.file_bytes.stable_hash(&mut h);
        mega_cfg.host_rate.stable_hash(&mut h);
        mega_cfg.rack_base_rate.stable_hash(&mut h);
        h.finish()
    };
    let mega_tel = tel.clone();
    let megaflow_study = StudySpec {
        name: format!("megaflow(seed={seed},{scale:?})"),
        fingerprint: mega_fp,
        run: Box::new(move || {
            Arc::new(megaflow::run(
                seed,
                &mega_cfg,
                ir_simnet::sim::EngineMode::Incremental,
                mega_tel,
            )) as Arc<dyn Any + Send + Sync>
        }),
        encode: Box::new(|out| {
            codec::encode_megaflow(
                out.downcast_ref::<megaflow::MegaflowResult>()
                    .expect("megaflow output"),
            )
        }),
        decode: Box::new(|bytes| {
            codec::decode_megaflow(bytes).map(|d| Arc::new(d) as Arc<dyn Any + Send + Sync>)
        }),
    };

    // Striping sweep: raced vs striped sessions on the pinned 2-relay
    // grid. Cells are seed-invariant (fixed geometry, like the
    // tournament's ridge scenarios), but the seed stays a fingerprint
    // input so the cache key moves with the CLI invocation. The fault
    // plans are pure functions of the scenario; hash them directly so
    // the fingerprint covers fault pressure (the uplinks are links 1
    // and 3 of the scenario world, in construction order).
    let striping_fp = {
        let mut h = StableHasher::new();
        "study/striping".stable_hash(&mut h);
        CODEC_VERSION.stable_hash(&mut h);
        seed.stable_hash(&mut h);
        striping::HORIZON_SECS.stable_hash(&mut h);
        striping::KS
            .iter()
            .map(|&k| k as u64)
            .collect::<Vec<_>>()
            .stable_hash(&mut h);
        striping::chunk_grid(scale)
            .iter()
            .map(|&c| c as u64)
            .collect::<Vec<_>>()
            .stable_hash(&mut h);
        striping::raced_session().stable_hash(&mut h);
        striping::striped_session(8, 2).stable_hash(&mut h);
        for s in striping::SCENARIOS {
            s.name.stable_hash(&mut h);
            s.direct_rate.to_bits().stable_hash(&mut h);
            s.overlay1_rate.to_bits().stable_hash(&mut h);
            s.overlay2_rate.to_bits().stable_hash(&mut h);
            striping::scenario_fault_plan(s.fault, LinkId(1), LinkId(3)).stable_hash(&mut h);
        }
        h.finish()
    };
    let striping_study = StudySpec {
        name: format!("striping(seed={seed},{scale:?})"),
        fingerprint: striping_fp,
        run: Box::new(move || Arc::new(striping::run(seed, scale)) as Arc<dyn Any + Send + Sync>),
        encode: Box::new(|out| {
            codec::encode_striping(
                out.downcast_ref::<Vec<striping::StripeCell>>()
                    .expect("striping output"),
            )
        }),
        decode: Box::new(|bytes| {
            codec::decode_striping(bytes).map(|d| Arc::new(d) as Arc<dyn Any + Send + Sync>)
        }),
    };

    // Policy tournament: one study per policy, one artefact over all.
    let mut tplan = tournament_plan(seed, scale, tournament::POLICIES);

    let mut artefacts: Vec<ArtefactSpec> = [
        "fig1",
        "fig2",
        "table1",
        "table2",
        "fig3",
        "fig4",
        "fig5",
        "variability",
        "overhead",
    ]
    .into_iter()
    .map(|name| measurement_artefact(name, m_fp))
    .collect();
    artefacts.push(selection_artefact("fig6", s_fp));
    artefacts.push(selection_artefact("table3", s_fp));
    artefacts.push(ArtefactSpec {
        name: "sites".into(),
        fingerprint: artefact_fingerprint("sites", &[sites_fp]),
        deps: vec![sites_fp],
        render: Box::new(|inputs| {
            output_of(&sites::report_of(
                inputs[0]
                    .downcast_ref::<Vec<sites::SiteResult>>()
                    .expect("site results"),
            ))
        }),
    });
    artefacts.push(ArtefactSpec {
        name: "headroom".into(),
        fingerprint: artefact_fingerprint("headroom", &[hr_fp]),
        deps: vec![hr_fp],
        render: Box::new(|inputs| {
            output_of(&headroom::report_of(
                inputs[0]
                    .downcast_ref::<Vec<headroom::Headroom>>()
                    .expect("headroom results"),
            ))
        }),
    });
    artefacts.push(ArtefactSpec {
        name: "faults".into(),
        fingerprint: artefact_fingerprint("faults", &[faults_fp]),
        deps: vec![faults_fp],
        render: Box::new(|inputs| {
            output_of(&faults::report_of(
                inputs[0]
                    .downcast_ref::<Vec<faults::FaultCell>>()
                    .expect("fault cells"),
            ))
        }),
    });

    artefacts.push(ArtefactSpec {
        name: "megaflow".into(),
        fingerprint: artefact_fingerprint("megaflow", &[mega_fp]),
        deps: vec![mega_fp],
        render: Box::new(|inputs| {
            output_of(&megaflow::report_of(
                inputs[0]
                    .downcast_ref::<megaflow::MegaflowResult>()
                    .expect("megaflow result"),
            ))
        }),
    });

    artefacts.push(ArtefactSpec {
        name: "striping".into(),
        fingerprint: artefact_fingerprint("striping", &[striping_fp]),
        deps: vec![striping_fp],
        render: Box::new(|inputs| {
            output_of(&striping::report_of(
                inputs[0]
                    .downcast_ref::<Vec<striping::StripeCell>>()
                    .expect("striping cells"),
            ))
        }),
    });

    artefacts.append(&mut tplan.artefacts);

    let mut studies = vec![
        measurement,
        selection,
        sites_study,
        headroom_study,
        faults_study,
        megaflow_study,
        striping_study,
    ];
    studies.append(&mut tplan.studies);

    SweepPlan { studies, artefacts }
}

/// Fingerprint of one policy's tournament study. Covers everything
/// that determines its cells — the seed, scale (via transfer count
/// and schedule), session config, shared tournament constants, the
/// scenario roster, the star-scenario inputs, and **this policy's**
/// config — but nothing about any other policy, so growing the
/// [`tournament::POLICIES`] roster never moves an existing study's
/// key.
fn tournament_policy_fingerprint(seed: u64, scale: Scale, policy: &str) -> Fingerprint {
    let mut h = StableHasher::new();
    "study/tournament".stable_hash(&mut h);
    CODEC_VERSION.stable_hash(&mut h);
    seed.stable_hash(&mut h);
    policy.stable_hash(&mut h);
    (tournament::TOURNAMENT_K as u64).stable_hash(&mut h);
    for &name in tournament::SCENARIOS {
        name.stable_hash(&mut h);
    }
    Schedule::measurement_study()
        .spread(tournament::tournament_transfers(scale))
        .stable_hash(&mut h);
    tournament::tournament_session().stable_hash(&mut h);
    // Star-scenario inputs (the ridge is fixed geometry, covered by
    // the SCENARIOS names + codec version).
    ir_workload::roster::CLIENTS[..3].stable_hash(&mut h);
    ir_workload::roster::INTERMEDIATES[..6].stable_hash(&mut h);
    ir_workload::roster::SERVERS[..1].stable_hash(&mut h);
    Calibration::default().stable_hash(&mut h);
    // Per-policy config, exhaustively (see ir-policy's StableHash
    // impls).
    match policy {
        "random-set" | "utilization-weighted" => {
            (tournament::TOURNAMENT_K as u64).stable_hash(&mut h)
        }
        "k-shortest" => tournament::kshortest_config().stable_hash(&mut h),
        "adaptive" => tournament::adaptive_config().stable_hash(&mut h),
        "backpressure" => tournament::backpressure_config().stable_hash(&mut h),
        other => panic!("tournament policy {other:?} has no fingerprint arm"),
    }
    h.finish()
}

/// The tournament as a sweep plan: one cached study per `policies`
/// entry plus the single `tournament` artefact consuming them. The
/// full plan passes the whole roster; the bench gate passes subsets to
/// prove that adding a policy re-runs only the new study.
pub fn tournament_plan(seed: u64, scale: Scale, policies: &[&'static str]) -> SweepPlan {
    let studies: Vec<StudySpec> = policies
        .iter()
        .map(|&p| {
            let fp = tournament_policy_fingerprint(seed, scale, p);
            StudySpec {
                name: format!("tournament/{p}(seed={seed},{scale:?})"),
                fingerprint: fp,
                run: Box::new(move || {
                    Arc::new(tournament::run_policy(seed, scale, p)) as Arc<dyn Any + Send + Sync>
                }),
                encode: Box::new(|out| {
                    codec::encode_tournament(
                        out.downcast_ref::<Vec<tournament::TournamentCell>>()
                            .expect("tournament cells"),
                    )
                }),
                decode: Box::new(|bytes| {
                    codec::decode_tournament(bytes)
                        .map(|d| Arc::new(d) as Arc<dyn Any + Send + Sync>)
                }),
            }
        })
        .collect();
    let deps: Vec<Fingerprint> = studies.iter().map(|s| s.fingerprint).collect();
    let artefact = ArtefactSpec {
        name: "tournament".into(),
        fingerprint: artefact_fingerprint("tournament", &deps),
        deps: deps.clone(),
        render: Box::new(|inputs| {
            let cells: Vec<tournament::TournamentCell> = inputs
                .iter()
                .flat_map(|i| {
                    i.downcast_ref::<Vec<tournament::TournamentCell>>()
                        .expect("tournament cells")
                        .clone()
                })
                .collect();
            output_of(&tournament::report_of(&cells))
        }),
    };
    SweepPlan {
        studies,
        artefacts: vec![artefact],
    }
}

/// A small pinned sweep for tests and the bench gate: the 4×4×1
/// determinism-golden geometry feeding the two artefacts that share the
/// measurement study (Fig 1 + Table I) — one study, two artefacts, so
/// shared-study dedup and cache behaviour are observable in seconds.
pub fn mini_plan(seed: u64) -> SweepPlan {
    let clients = &ir_workload::roster::CLIENTS[..4];
    let relays = &ir_workload::roster::INTERMEDIATES[..4];
    let servers = &ir_workload::roster::SERVERS[..1];
    let cal = Calibration::default();
    let schedule = Schedule::measurement_study().spread(8);
    let session = SessionConfig::paper_defaults();
    let fp = measurement_fingerprint(
        seed, clients, relays, servers, &cal, false, 0, schedule, &session,
    );
    let study = measurement_spec(format!("measurement-mini(seed={seed})"), fp, move || {
        let scenario = ir_workload::build(seed, clients, relays, servers, cal, false);
        run_measurement_study(&scenario, 0, schedule, session)
    });
    SweepPlan {
        studies: vec![study],
        artefacts: vec![
            measurement_artefact("fig1", fp),
            measurement_artefact("table1", fp),
        ],
    }
}

/// Executes a sweep plan, writes every artefact file under `out_dir`
/// (when given), and wires cache counters and per-node spans into
/// `tel`. With `cache: None` every study runs and every artefact
/// renders — the cacheless baseline warm runs must match byte-for-byte.
pub fn run_sweep(
    plan: SweepPlan,
    cache: Option<&ArtifactCache>,
    out_dir: Option<&Path>,
    tel: Option<&Arc<Telemetry>>,
) -> std::io::Result<ExecReport> {
    let report = execute(plan.studies, plan.artefacts, cache);
    if let Some(dir) = out_dir {
        std::fs::create_dir_all(dir)?;
        for artefact in &report.artefacts {
            for (name, bytes) in &artefact.output.files {
                std::fs::write(dir.join(name), bytes)?;
            }
        }
    }
    if let Some(tel) = tel {
        tel.metrics
            .counter("artifact_cache_hits", vec![])
            .add(report.cache_hits);
        tel.metrics
            .counter("artifact_cache_misses", vec![])
            .add(report.cache_misses);
        tel.metrics
            .counter("artifact_cache_stores", vec![])
            .add(report.cache_stores);
        tel.metrics
            .counter("artifact_cache_corrupt", vec![])
            .add(report.cache_corrupt);
        tel.metrics
            .counter("sweep_studies_executed", vec![])
            .add(report.studies_executed());
        tel.metrics
            .counter("sweep_artefacts", vec![])
            .add(report.artefacts.len() as u64);
        for (i, s) in report.studies.iter().enumerate() {
            tel.tracer.record(
                Event::span(EventKind::StudyExec, 0, s.wall.as_micros() as u64, i as u64)
                    .with_str("study", s.name.clone())
                    .with_str("source", format!("{:?}", s.source))
                    .with_str("fingerprint", s.fingerprint.to_hex()),
            );
        }
        for (i, a) in report.artefacts.iter().enumerate() {
            tel.tracer.record(
                Event::span(
                    EventKind::ArtifactRender,
                    0,
                    a.wall.as_micros() as u64,
                    i as u64,
                )
                .with_str("artefact", a.name.clone())
                .with_str("source", format!("{:?}", a.source))
                .with_str("fingerprint", a.fingerprint.to_hex()),
            );
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_full_plan_artefact_has_a_salt_and_unique_fingerprint() {
        let plan = full_plan(2007, Scale::Quick, None);
        assert_eq!(plan.studies.len(), 7 + tournament::POLICIES.len());
        // `soak` carries a salt but lives in its own plan (wall-clock
        // results must not enter the byte-replayable sweep), so the
        // full plan renders every salted artefact except that one.
        assert_eq!(plan.artefacts.len(), SALTS.len() - 1);
        let mut fps: Vec<Fingerprint> = plan
            .artefacts
            .iter()
            .map(|a| a.fingerprint)
            .chain(plan.studies.iter().map(|s| s.fingerprint))
            .collect();
        fps.sort();
        fps.dedup();
        assert_eq!(fps.len(), plan.artefacts.len() + plan.studies.len());
        // Every artefact's deps resolve to a declared study.
        for a in &plan.artefacts {
            for dep in &a.deps {
                assert!(
                    plan.studies.iter().any(|s| s.fingerprint == *dep),
                    "artefact {} has unresolved dep",
                    a.name
                );
            }
        }
    }

    #[test]
    fn adding_a_policy_keeps_existing_tournament_fingerprints() {
        let small = tournament_plan(7, Scale::Quick, &["random-set", "k-shortest"]);
        let big = tournament_plan(7, Scale::Quick, &["random-set", "k-shortest", "adaptive"]);
        for (s, b) in small.studies.iter().zip(&big.studies) {
            assert_eq!(s.fingerprint, b.fingerprint, "{} moved", s.name);
        }
        // The artefact key covers the roster, so it does move.
        assert_ne!(small.artefacts[0].fingerprint, big.artefacts[0].fingerprint);
        // And the full plan embeds the same per-policy keys.
        let full = full_plan(7, Scale::Quick, None);
        for s in &small.studies {
            assert!(
                full.studies.iter().any(|f| f.fingerprint == s.fingerprint),
                "{} missing from full plan",
                s.name
            );
        }
    }

    #[test]
    fn fingerprints_move_with_seed_and_scale() {
        let a = full_plan(1, Scale::Quick, None);
        let b = full_plan(2, Scale::Quick, None);
        let c = full_plan(1, Scale::Paper, None);
        let d = full_plan(1, Scale::Quick, None);
        for ((x, y), (z, w)) in a
            .studies
            .iter()
            .zip(b.studies.iter())
            .zip(c.studies.iter().zip(d.studies.iter()))
        {
            assert_ne!(x.fingerprint, y.fingerprint, "seed must move {}", x.name);
            assert_ne!(x.fingerprint, z.fingerprint, "scale must move {}", x.name);
            assert_eq!(x.fingerprint, w.fingerprint, "same inputs, same key");
        }
    }

    #[test]
    fn mini_plan_is_stable_and_distinct_from_full() {
        let a = mini_plan(42);
        let b = mini_plan(42);
        assert_eq!(a.studies[0].fingerprint, b.studies[0].fingerprint);
        assert_eq!(a.artefacts[0].fingerprint, b.artefacts[0].fingerprint);
        let full = full_plan(42, Scale::Quick, None);
        assert_ne!(a.studies[0].fingerprint, full.studies[0].fingerprint);
        // Same artefact name, different deps ⇒ different artefact key.
        assert_ne!(a.artefacts[0].fingerprint, full.artefacts[0].fingerprint);
    }

    /// Pins the full plan's study and artefact *order* (the BTreeMap
    /// conversions in core/policy and core/predictor must not have
    /// reshuffled anything the scheduler or cache observes). The
    /// sweep's dependency scheduler walks these lists positionally, so
    /// a silent reorder would shuffle study execution and CSV emission
    /// order even with identical fingerprints.
    #[test]
    fn full_plan_order_is_pinned() {
        let plan = full_plan(2007, Scale::Quick, None);
        let studies: Vec<&str> = plan.studies.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            studies,
            [
                "measurement(seed=2007,Quick)",
                "selection(seed=2007,Quick)",
                "sites(seed=2007,transfers=8)",
                "headroom(seed=2007,transfers=30)",
                "faults(seed=2007,Quick)",
                "megaflow(seed=2007,Quick)",
                "striping(seed=2007,Quick)",
                "tournament/random-set(seed=2007,Quick)",
                "tournament/utilization-weighted(seed=2007,Quick)",
                "tournament/k-shortest(seed=2007,Quick)",
                "tournament/adaptive(seed=2007,Quick)",
                "tournament/backpressure(seed=2007,Quick)",
            ]
        );
        let artefacts: Vec<&str> = plan.artefacts.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(
            artefacts,
            [
                "fig1",
                "fig2",
                "table1",
                "table2",
                "fig3",
                "fig4",
                "fig5",
                "variability",
                "overhead",
                "fig6",
                "table3",
                "sites",
                "headroom",
                "faults",
                "megaflow",
                "striping",
                "tournament",
            ]
        );
        // And construction is reproducible: same order, same keys.
        let again = full_plan(2007, Scale::Quick, None);
        for (a, b) in plan.studies.iter().zip(&again.studies) {
            assert_eq!(
                (a.name.as_str(), a.fingerprint),
                (b.name.as_str(), b.fingerprint)
            );
        }
        // Tournament studies follow the declared policy roster order.
        let t = tournament_plan(11, Scale::Quick, tournament::POLICIES);
        let expected: Vec<String> = tournament::POLICIES
            .iter()
            .map(|p| format!("tournament/{p}(seed=11,Quick)"))
            .collect();
        let got: Vec<&str> = t.studies.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(got, expected);
    }

    /// The soak plan is fingerprinted like any other study — stable
    /// under identical inputs, moved by seed and scale — without ever
    /// running the (wall-clock) study itself.
    #[test]
    fn soak_plan_is_fingerprinted_and_separate_from_full() {
        let a = soak_plan(2007, Scale::Quick);
        let b = soak_plan(2007, Scale::Quick);
        assert_eq!(a.studies.len(), 1);
        assert_eq!(a.artefacts.len(), 1);
        assert_eq!(a.studies[0].name, "soak(seed=2007,Quick)");
        assert_eq!(a.studies[0].fingerprint, b.studies[0].fingerprint);
        assert_eq!(a.artefacts[0].fingerprint, b.artefacts[0].fingerprint);
        assert_eq!(a.artefacts[0].deps, vec![a.studies[0].fingerprint]);
        let seed_moved = soak_plan(2008, Scale::Quick);
        assert_ne!(a.studies[0].fingerprint, seed_moved.studies[0].fingerprint);
        let scale_moved = soak_plan(2007, Scale::Paper);
        assert_ne!(a.studies[0].fingerprint, scale_moved.studies[0].fingerprint);
        // And the full plan never declares it.
        let full = full_plan(2007, Scale::Quick, None);
        assert!(full.artefacts.iter().all(|x| x.name != "soak"));
    }
}
