//! Fig 5 — intermediate-node utilization statistics.
//!
//! For each relay, the per-client utilizations (fraction of transfers
//! where the indirect path through it was chosen) are summarised by
//! average, standard deviation, and RMS — the three bars of the
//! paper's Fig 5. Headline: "The average utilization across all
//! intermediate nodes is 45%."

use crate::report::{csv, Check, Report};
use crate::runner::MeasurementData;
use ir_stats::OnlineStats;

/// Builds the Fig 5 report.
pub fn report(data: &MeasurementData) -> Report {
    let util = data.utilization();

    let mut table = ir_stats::TextTable::new()
        .title("intermediate node utilization (%, over per-client utilizations)")
        .header(["node", "average", "stdev", "rms"]);
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut grand = OnlineStats::new();

    for &via in &data.relays {
        let mut s = OnlineStats::new();
        for &client in &data.clients {
            if let Some(u) = util.utilization(client, via) {
                s.push(u * 100.0);
                grand.push(u * 100.0);
            }
        }
        if s.is_empty() {
            continue;
        }
        table.row([
            data.name(via).to_string(),
            format!("{:.1}", s.mean()),
            format!("{:.1}", s.stdev()),
            format!("{:.1}", s.rms()),
        ]);
        rows.push(vec![
            data.name(via).to_string(),
            format!("{:.2}", s.mean()),
            format!("{:.2}", s.stdev()),
            format!("{:.2}", s.rms()),
        ]);
    }

    let mut body = table.render();
    body.push('\n');
    body.push_str(&format!(
        "average utilization across all intermediate nodes: {:.1}%\n",
        grand.mean()
    ));

    // The paper also stresses that every node keeps significant
    // utilization: find the minimum per-node average.
    let min_avg = rows
        .iter()
        .filter_map(|r| r[1].parse::<f64>().ok())
        .fold(f64::INFINITY, f64::min);

    Report {
        id: "fig5",
        title: "Fig 5: intermediate node utilization".into(),
        body,
        csv: vec![(
            "utilization".into(),
            csv(&["node", "avg_pct", "stdev_pct", "rms_pct"], &rows),
        )],
        checks: vec![
            Check::banded("average utilization (%)", 45.0, grand.mean(), 25.0, 65.0),
            Check::banded(
                "minimum per-node average utilization (%)",
                5.0, // "significantly utilized regardless of which node"
                min_avg,
                0.5,
                100.0,
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_measurement_study;
    use ir_core::SessionConfig;
    use ir_workload::Schedule;

    #[test]
    fn fig5_summarises_all_relays() {
        let sc = ir_workload::build(
            37,
            &ir_workload::roster::CLIENTS[..4],
            &ir_workload::roster::INTERMEDIATES[..5],
            &ir_workload::roster::SERVERS[..1],
            ir_workload::Calibration::default(),
            false,
        );
        let data = run_measurement_study(
            &sc,
            0,
            Schedule::measurement_study().truncated(8),
            SessionConfig::paper_defaults(),
        );
        let r = report(&data);
        let text = r.render();
        for via in &data.relays {
            assert!(text.contains(data.name(*via)));
        }
        assert_eq!(r.csv[0].1.lines().count(), data.relays.len() + 1);
    }
}
