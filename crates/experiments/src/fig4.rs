//! Fig 4 — indirect-path throughput vs time.
//!
//! The paper's claim: "Indirect path throughputs do not show any
//! discernable uptrend or downtrend over time. However, there are a few
//! small jumps that do occur, which explain why some penalties occur."
//! We make the no-trend claim a Mann–Kendall test per (client, relay)
//! series and report the fraction of series with a significant trend.

use crate::report::{csv, Check, Report};
use crate::runner::MeasurementData;
use ir_stats::{mann_kendall, Trend};

/// Minimum series length for a meaningful trend test.
const MIN_SERIES: usize = 10;

/// Builds the Fig 4 report.
pub fn report(data: &MeasurementData) -> Report {
    let mut tested = 0usize;
    let mut trending = 0usize;
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut table = ir_stats::TextTable::new()
        .title("Mann-Kendall trend test on indirect-path throughput series")
        .header(["client", "via", "n", "tau", "p", "verdict"]);

    // Render at most this many rows (the CSV gets everything).
    const MAX_TABLE_ROWS: usize = 20;

    for pair in &data.pairs {
        let series: Vec<f64> = pair
            .records
            .iter()
            .filter(|r| r.chose_indirect())
            .map(|r| r.selected_path_rate)
            .filter(|v| v.is_finite() && *v > 0.0)
            .collect();
        if series.len() < MIN_SERIES {
            continue;
        }
        let mk = mann_kendall(&series);
        let verdict = mk.trend(0.05);
        tested += 1;
        if verdict != Trend::None {
            trending += 1;
        }
        if table.len() < MAX_TABLE_ROWS {
            table.row([
                data.name(pair.client).to_string(),
                data.name(pair.via).to_string(),
                series.len().to_string(),
                format!("{:+.2}", mk.tau),
                format!("{:.3}", mk.p_value),
                match verdict {
                    Trend::None => "no trend",
                    Trend::Increasing => "UP",
                    Trend::Decreasing => "DOWN",
                }
                .to_string(),
            ]);
        }
        rows.push(vec![
            data.name(pair.client).to_string(),
            data.name(pair.via).to_string(),
            series.len().to_string(),
            format!("{:.4}", mk.tau),
            format!("{:.4}", mk.p_value),
            format!("{verdict:?}"),
        ]);
    }

    let no_trend_pct = if tested == 0 {
        100.0
    } else {
        (tested - trending) as f64 / tested as f64 * 100.0
    };

    let mut body = table.render();
    body.push('\n');
    body.push_str(&format!(
        "series tested: {tested}; without significant monotone trend: {no_trend_pct:.0}%\n"
    ));

    Report {
        id: "fig4",
        title: "Fig 4: indirect-path throughput vs time (trend test)".into(),
        body,
        csv: vec![(
            "trends".into(),
            csv(&["client", "via", "n", "tau", "p_value", "verdict"], &rows),
        )],
        checks: vec![Check::banded(
            "series with no significant trend (%)",
            100.0, // the paper: "no discernable uptrend or downtrend"
            no_trend_pct,
            75.0,
            100.0,
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_measurement_study;
    use ir_core::SessionConfig;
    use ir_workload::Schedule;

    #[test]
    fn fig4_runs_trend_tests() {
        let sc = ir_workload::build(
            31,
            &ir_workload::roster::CLIENTS[..3],
            &ir_workload::roster::INTERMEDIATES[..3],
            &ir_workload::roster::SERVERS[..1],
            ir_workload::Calibration::default(),
            false,
        );
        let data = run_measurement_study(
            &sc,
            0,
            Schedule::measurement_study().truncated(30),
            SessionConfig::paper_defaults(),
        );
        let r = report(&data);
        assert!(r.render().contains("Mann-Kendall"));
    }
}
