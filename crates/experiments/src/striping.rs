//! Striping experiment: multi-source range striping vs the racing
//! session on the variability grid, including the penalty-tail cells
//! where single-path prediction goes stale.
//!
//! The paper's probe-then-commit session bets the whole remainder on
//! one path; Table I prices the penalty when that bet goes stale.
//! `ir-stripe` hedges the bet by fetching disjoint chunks over the
//! direct path plus the best-k indirect paths and rebalancing when
//! observed rates drift. This sweep measures what the hedge buys on a
//! pinned grid of 2-relay scenarios — stable geometries where racing
//! is already right, and fault geometries where the probe's prediction
//! goes stale immediately after the decision:
//!
//! * **healthy** cells (no fault): striping must never cost more than
//!   a small straggler tail over racing, and `chunks = 1, k = 1`
//!   degenerates to the racer exactly (the differential suite's
//!   bit-identity, re-checked here as a completion-time ratio of 1).
//! * **stale** cells (a brownout right after the probe): racing keeps
//!   waiting — the path still trickles, so no stall ever fires — while
//!   the striper's drift rebalancer moves remaining chunks to healthy
//!   paths. Striping must be **strictly** faster on every such cell;
//!   the bench gate (`BENCH_PR10.json`) enforces it.
//! * **death** cells (an outage kills the winning path): both runners
//!   recover — racing via mid-transfer failover, striping via
//!   stall-death chunk reassignment — and the striper must finish with
//!   at least one recorded path death.
//!
//! The stripe set comes from the path-selection plane:
//! [`ir_policy::PathSelector::best_k`] on a [`KShortest`] selector
//! picks the k candidate chains, so racer and striper share one
//! selection path. The grid is pinned geometry (like the tournament's
//! ridge scenarios): constant-rate worlds and a deterministic selector
//! make every cell a pure function of the config, so the `seed`
//! parameter exists for CLI/fingerprint symmetry and future seeded
//! variants — cells are seed-invariant.

use crate::report::{csv, Check, Report};
use crate::runner::{parallel_map, Scale};
use ir_core::predictor::FirstPortion;
use ir_core::sim_transport::SimTransport;
use ir_core::{
    run_paths_session_traced, FailoverConfig, PathSpec, RebalanceConfig, SessionConfig,
    SessionMode, TransferRecord,
};
use ir_policy::{KShortest, KShortestConfig, PathCtx, PathSelector};
use ir_simnet::bandwidth::ConstantProcess;
use ir_simnet::faults::FaultPlan;
use ir_simnet::sim::Network;
use ir_simnet::time::{SimDuration, SimTime};
use ir_simnet::topology::{LinkId, NodeId, NodeKind, Topology};
use ir_stripe::run_striped_paths_session_stats;

/// Session horizon (seconds) for every cell; an unfinished transfer is
/// charged the full horizon.
pub const HORIZON_SECS: u64 = 3600;

/// Stripe widths swept (the best-k knob; the grid worlds carry two
/// relays, so 2 is the full set).
pub const KS: &[u32] = &[1, 2];

/// Fault pressure applied to a scenario's overlay uplinks. Faults land
/// at t = 1 s — mid-remainder, right after the probe decision — and
/// outlast the horizon, the exact "prediction went stale" geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Healthy network.
    None,
    /// The primary overlay uplink browns out to 2% capacity: it still
    /// trickles, so racing never sees a stall, and the probe's
    /// prediction is maximally stale.
    BrownoutPrimary,
    /// Both overlay uplinks fade to 5%: every indirect escape route
    /// goes stale at once and only the direct path stays honest.
    BrownoutBoth,
    /// The primary overlay uplink dies outright mid-transfer.
    OutagePrimary,
}

/// One scenario of the pinned grid: a 2-relay star with constant-rate
/// uplinks and a fault kind.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioSpec {
    /// Cell label (CSV / table key).
    pub name: &'static str,
    /// Direct client→server rate (B/s).
    pub direct_rate: f64,
    /// Client→relay-1 rate (B/s); relay→server legs are effectively
    /// unconstrained.
    pub overlay1_rate: f64,
    /// Client→relay-2 rate (B/s).
    pub overlay2_rate: f64,
    /// Fault applied at t = 1 s.
    pub fault: FaultKind,
}

impl ScenarioSpec {
    /// Stale-prediction (penalty-tail) cell: the probe's winner browns
    /// out right after the decision but keeps trickling. These are the
    /// cells striping exists for; the gate requires a strict win.
    pub fn is_stale(&self) -> bool {
        matches!(
            self.fault,
            FaultKind::BrownoutPrimary | FaultKind::BrownoutBoth
        )
    }
}

/// The pinned scenario grid.
pub const SCENARIOS: &[ScenarioSpec] = &[
    ScenarioSpec {
        name: "stable-direct",
        direct_rate: 800_000.0,
        overlay1_rate: 300_000.0,
        overlay2_rate: 200_000.0,
        fault: FaultKind::None,
    },
    ScenarioSpec {
        name: "stable-overlay",
        direct_rate: 100_000.0,
        overlay1_rate: 800_000.0,
        overlay2_rate: 500_000.0,
        fault: FaultKind::None,
    },
    ScenarioSpec {
        name: "split-capacity",
        direct_rate: 400_000.0,
        overlay1_rate: 800_000.0,
        overlay2_rate: 600_000.0,
        fault: FaultKind::None,
    },
    ScenarioSpec {
        name: "stale-brownout",
        direct_rate: 100_000.0,
        overlay1_rate: 800_000.0,
        overlay2_rate: 500_000.0,
        fault: FaultKind::BrownoutPrimary,
    },
    ScenarioSpec {
        name: "double-fade",
        direct_rate: 200_000.0,
        overlay1_rate: 800_000.0,
        overlay2_rate: 600_000.0,
        fault: FaultKind::BrownoutBoth,
    },
    ScenarioSpec {
        name: "overlay-death",
        direct_rate: 100_000.0,
        overlay1_rate: 800_000.0,
        overlay2_rate: 500_000.0,
        fault: FaultKind::OutagePrimary,
    },
];

/// Chunk counts swept at a scale.
pub fn chunk_grid(scale: Scale) -> &'static [u32] {
    match scale {
        Scale::Quick => &[8],
        Scale::Paper => &[4, 8, 16],
    }
}

/// The racing baseline: paper defaults with mid-transfer failover
/// enabled (the strongest single-path recovery the racer has) and the
/// cell horizon.
pub fn raced_session() -> SessionConfig {
    let mut cfg = SessionConfig::paper_defaults();
    cfg.failover = Some(FailoverConfig::paper_defaults());
    cfg.horizon = SimDuration::from_secs(HORIZON_SECS);
    cfg
}

/// The striped contender at a grid point.
pub fn striped_session(chunks: u32, k: u32) -> SessionConfig {
    let mut cfg = SessionConfig::paper_defaults();
    cfg.mode = SessionMode::Striped {
        chunks,
        k,
        rebalance: RebalanceConfig::paper_defaults(),
    };
    cfg.horizon = SimDuration::from_secs(HORIZON_SECS);
    cfg
}

/// The fault plan a scenario carries (see [`FaultKind`]). Exposed so
/// the sweep fingerprint can hash the plans directly.
pub fn scenario_fault_plan(kind: FaultKind, l_cv1: LinkId, l_cv2: LinkId) -> FaultPlan {
    let at = SimTime::from_secs(1);
    let until = SimTime::from_secs(4000);
    match kind {
        FaultKind::None => FaultPlan::default(),
        FaultKind::BrownoutPrimary => FaultPlan::default().brownout(l_cv1, at, until, 0.02),
        FaultKind::BrownoutBoth => FaultPlan::default()
            .brownout(l_cv1, at, until, 0.05)
            .brownout(l_cv2, at, until, 0.05),
        FaultKind::OutagePrimary => FaultPlan::default().link_outage(l_cv1, at, until),
    }
}

struct World {
    tp: SimTransport,
    topo: Topology,
    client: NodeId,
    relays: Vec<NodeId>,
    server: NodeId,
}

/// Builds a scenario's world: client, two relays, server; 80 ms direct
/// vs 50 + 15 ms overlay latency (the differential suite's star), with
/// the scenario's rates and fault plan installed.
fn build_world(spec: &ScenarioSpec) -> World {
    let mut t = Topology::new();
    let c = t.add_node("client", NodeKind::Client);
    let v1 = t.add_node("relay1", NodeKind::Intermediate);
    let v2 = t.add_node("relay2", NodeKind::Intermediate);
    let s = t.add_node("server", NodeKind::Server);
    let l_cs = t.add_link(c, s, SimDuration::from_millis(80));
    let l_cv1 = t.add_link(c, v1, SimDuration::from_millis(50));
    let l_v1s = t.add_link(v1, s, SimDuration::from_millis(15));
    let l_cv2 = t.add_link(c, v2, SimDuration::from_millis(50));
    let l_v2s = t.add_link(v2, s, SimDuration::from_millis(15));
    let topo = t.clone();
    let mut net = Network::new(t, 1.0);
    net.set_link_process(l_cs, Box::new(ConstantProcess::new(spec.direct_rate)));
    net.set_link_process(l_cv1, Box::new(ConstantProcess::new(spec.overlay1_rate)));
    net.set_link_process(l_v1s, Box::new(ConstantProcess::new(50e6)));
    net.set_link_process(l_cv2, Box::new(ConstantProcess::new(spec.overlay2_rate)));
    net.set_link_process(l_v2s, Box::new(ConstantProcess::new(50e6)));
    net.set_fault_plan(&scenario_fault_plan(spec.fault, l_cv1, l_cv2));
    World {
        tp: SimTransport::new(net),
        topo,
        client: c,
        relays: vec![v1, v2],
        server: s,
    }
}

/// The stripe set, drawn from the path-selection plane: `best_k` on a
/// k-shortest selector over the world topology. Both overlay chains
/// beat the direct path on latency (65 vs 80 ms), so `k = 1` yields
/// the first relay and `k = 2` both, deterministically.
fn stripe_set(w: &World, k: usize) -> (Vec<PathSpec>, Vec<NodeId>) {
    let mut sel = KShortest::new(KShortestConfig::default());
    let ctx = PathCtx {
        client: w.client,
        server: w.server,
        relays: &w.relays,
        topo: &w.topo,
        transfer_index: 0,
    };
    let paths: Vec<PathSpec> = sel
        .best_k(&ctx, k)
        .into_iter()
        .filter(|p| p.is_indirect())
        .collect();
    let candidates: Vec<NodeId> = paths.iter().filter_map(|p| p.via()).collect();
    (paths, candidates)
}

/// One (scenario, k, chunks) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct StripeCell {
    /// Scenario label.
    pub scenario: String,
    /// Stripe width (indirect candidates).
    pub k: u32,
    /// Remainder chunk count.
    pub chunks: u32,
    /// Stale-prediction (penalty-tail) cell.
    pub stale: bool,
    /// Racing completion time (s; horizon when abandoned).
    pub raced_secs: f64,
    /// Striped completion time (s; horizon when abandoned).
    pub striped_secs: f64,
    /// `striped_secs / raced_secs` — < 1 ⇒ striping wins.
    pub ratio: f64,
    /// Chunk reassignments (stall + drift) in the striped run.
    pub reassignments: u32,
    /// Paths declared dead in the striped run.
    pub deaths: u32,
    /// Chunks the direct path carried.
    pub direct_chunks: u64,
    /// Chunks the overlay paths carried.
    pub overlay_chunks: u64,
}

fn completion_secs(rec: &TransferRecord) -> f64 {
    if rec.selected_throughput > 0.0 {
        rec.file_bytes as f64 / rec.selected_throughput
    } else {
        HORIZON_SECS as f64
    }
}

fn run_cell(spec: &ScenarioSpec, k: u32, chunks: u32) -> StripeCell {
    let raced = {
        let mut w = build_world(spec);
        let (paths, candidates) = stripe_set(&w, k as usize);
        run_paths_session_traced(
            &mut w.tp,
            &mut FirstPortion,
            w.client,
            w.server,
            &paths,
            candidates,
            0,
            &raced_session(),
            None,
        )
    };
    let (rec, stats) = {
        let mut w = build_world(spec);
        let (paths, candidates) = stripe_set(&w, k as usize);
        run_striped_paths_session_stats(
            &mut w.tp,
            &mut FirstPortion,
            w.client,
            w.server,
            &paths,
            candidates,
            0,
            &striped_session(chunks, k),
            None,
        )
    };
    let raced_secs = completion_secs(&raced);
    let striped_secs = completion_secs(&rec);
    let direct_chunks = stats
        .per_path
        .iter()
        .filter(|p| !p.path.is_indirect())
        .map(|p| p.chunks)
        .sum();
    let overlay_chunks = stats
        .per_path
        .iter()
        .filter(|p| p.path.is_indirect())
        .map(|p| p.chunks)
        .sum();
    StripeCell {
        scenario: spec.name.into(),
        k,
        chunks,
        stale: spec.is_stale(),
        raced_secs,
        striped_secs,
        ratio: striped_secs / raced_secs,
        reassignments: stats.reassignments,
        deaths: stats.deaths,
        direct_chunks,
        overlay_chunks,
    }
}

/// Runs the sweep: every scenario × stripe width × chunk count, each
/// cell a raced baseline and a striped run on identically built
/// worlds. Cells are independent, so they run on the worker pool;
/// output order is the grid order regardless of thread count.
pub fn run(_seed: u64, scale: Scale) -> Vec<StripeCell> {
    let grid: Vec<(&ScenarioSpec, u32, u32)> = SCENARIOS
        .iter()
        .flat_map(|s| {
            KS.iter()
                .flat_map(move |&k| chunk_grid(scale).iter().map(move |&chunks| (s, k, chunks)))
        })
        .collect();
    parallel_map(grid.len(), |i| {
        let (spec, k, chunks) = grid[i];
        run_cell(spec, k, chunks)
    })
}

/// Builds the striping report.
pub fn report(seed: u64, scale: Scale) -> Report {
    report_of(&run(seed, scale))
}

/// Builds the striping report from precomputed (possibly
/// cache-restored) sweep cells.
pub fn report_of(cells: &[StripeCell]) -> Report {
    let mut table = ir_stats::TextTable::new()
        .title("striped vs raced completion on the variability grid")
        .header([
            "scenario",
            "k",
            "chunks",
            "raced s",
            "striped s",
            "ratio",
            "reassign",
            "deaths",
            "chunks d/o",
        ]);
    let mut rows = Vec::new();
    for c in cells {
        table.row([
            c.scenario.clone(),
            c.k.to_string(),
            c.chunks.to_string(),
            format!("{:.1}", c.raced_secs),
            format!("{:.1}", c.striped_secs),
            format!("{:.3}", c.ratio),
            c.reassignments.to_string(),
            c.deaths.to_string(),
            format!("{}/{}", c.direct_chunks, c.overlay_chunks),
        ]);
        rows.push(vec![
            c.scenario.clone(),
            c.k.to_string(),
            c.chunks.to_string(),
            (c.stale as u8).to_string(),
            format!("{:.4}", c.raced_secs),
            format!("{:.4}", c.striped_secs),
            format!("{:.4}", c.ratio),
            c.reassignments.to_string(),
            c.deaths.to_string(),
            c.direct_chunks.to_string(),
            c.overlay_chunks.to_string(),
        ]);
    }

    let stale: Vec<&StripeCell> = cells.iter().filter(|c| c.stale).collect();
    let healthy: Vec<&StripeCell> = cells.iter().filter(|c| !c.stale && c.deaths == 0).collect();
    let death: Vec<&StripeCell> = cells
        .iter()
        .filter(|c| c.scenario == "overlay-death")
        .collect();
    let worst_stale = stale
        .iter()
        .map(|c| c.ratio)
        .fold(f64::NEG_INFINITY, f64::max);
    let best_stale = stale.iter().map(|c| c.ratio).fold(f64::INFINITY, f64::min);
    let worst_healthy = healthy
        .iter()
        .map(|c| c.ratio)
        .fold(f64::NEG_INFINITY, f64::max);
    let stale_reassignments: u64 = stale.iter().map(|c| c.reassignments as u64).sum();
    let min_death_recoveries = death
        .iter()
        .map(|c| (c.reassignments + c.deaths) as f64)
        .fold(f64::INFINITY, f64::min);

    let mut body = table.render();
    body.push_str(&format!(
        "\nstale cells: worst ratio {worst_stale:.3}, best {best_stale:.3}, \
         {stale_reassignments} chunk reassignments\n\
         healthy cells: worst ratio {worst_healthy:.3}\n"
    ));

    Report {
        id: "striping",
        title: "Multi-source striping vs racing on the variability grid".into(),
        body,
        csv: vec![(
            "cells".into(),
            csv(
                &[
                    "scenario",
                    "k",
                    "chunks",
                    "stale",
                    "raced_secs",
                    "striped_secs",
                    "ratio",
                    "reassignments",
                    "deaths",
                    "direct_chunks",
                    "overlay_chunks",
                ],
                &rows,
            ),
        )],
        checks: vec![
            // The tentpole claim: striping strictly beats racing on
            // every stale-prediction cell (the penalty tail).
            Check::banded(
                "stale cells, worst striped/raced ratio",
                0.5,
                worst_stale,
                0.0,
                0.999,
            ),
            // And costs at most a small straggler tail when racing is
            // already right.
            Check::banded(
                "healthy cells, worst striped/raced ratio",
                1.0,
                worst_healthy,
                0.0,
                1.1,
            ),
            // The stale wins must come from the rebalancer, not luck.
            Check::banded(
                "stale cells, chunk reassignments (count)",
                1.0,
                stale_reassignments as f64,
                1.0,
                1.0e9,
            ),
            // Death cells: every striped run recovers the orphaned
            // work — by drift-steal before the stall timer (a
            // reassignment) or by stall-death (a death + reassignment).
            Check::banded(
                "path-death cells, min recoveries per run",
                1.0,
                min_death_recoveries,
                1.0,
                1.0e9,
            ),
            Check::info("stale cells, best striped/raced ratio", 0.5, best_stale),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic_and_striping_wins_the_penalty_tail() {
        let a = run(11, Scale::Quick);
        let b = run(11, Scale::Quick);
        assert_eq!(
            a.len(),
            SCENARIOS.len() * KS.len() * chunk_grid(Scale::Quick).len()
        );
        assert_eq!(a, b, "cells diverged across runs");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.raced_secs.to_bits(), y.raced_secs.to_bits());
            assert_eq!(x.striped_secs.to_bits(), y.striped_secs.to_bits());
            assert_eq!(x.ratio.to_bits(), y.ratio.to_bits());
        }
        // Every stale cell is a strict striping win, with the
        // rebalancer engaged.
        for c in a.iter().filter(|c| c.stale) {
            assert!(c.ratio < 1.0, "striping lost a stale cell: {c:?}");
            assert!(c.reassignments > 0, "no rebalancing in {c:?}");
        }
        // Death cells survive the outage and record the recovery:
        // either the drift-steal beat the stall timer (reassignment,
        // no death) or stall-death fired (death + reassignment).
        for c in a.iter().filter(|c| c.scenario == "overlay-death") {
            assert!(c.reassignments + c.deaths >= 1, "{c:?}");
            assert!(c.striped_secs < HORIZON_SECS as f64, "{c:?}");
        }
        // Healthy cells never abandon and account every chunk.
        for c in a.iter().filter(|c| !c.stale) {
            assert_eq!(c.direct_chunks + c.overlay_chunks, c.chunks as u64, "{c:?}");
        }
    }

    /// `chunks = 1, k = 1` on a healthy cell is the racer: the
    /// completion-time ratio is exactly 1 (the differential suite
    /// proves bit-identity of the records; this pins the derived
    /// metric the artefact reports).
    #[test]
    fn single_chunk_k1_ratio_is_exactly_one() {
        let cell = run_cell(&SCENARIOS[1], 1, 1);
        assert_eq!(cell.ratio.to_bits(), 1.0f64.to_bits(), "{cell:?}");
        assert_eq!(cell.reassignments, 0);
        assert_eq!(cell.deaths, 0);
    }

    /// The stripe set honours the policy plane's `best_k` ordering:
    /// k = 1 probes one relay, k = 2 both.
    #[test]
    fn stripe_set_width_follows_best_k() {
        let w = build_world(&SCENARIOS[0]);
        let (p1, c1) = stripe_set(&w, 1);
        let (p2, c2) = stripe_set(&w, 2);
        assert_eq!(p1.len(), 1);
        assert_eq!(c1.len(), 1);
        assert_eq!(p2.len(), 2);
        assert_eq!(c2.len(), 2);
        assert_eq!(p2[0], p1[0], "best_k(1) is the head of best_k(2)");
    }

    #[test]
    fn report_has_cells_and_csv() {
        let r = report(11, Scale::Quick);
        assert_eq!(r.id, "striping");
        assert_eq!(r.csv.len(), 1);
        let lines = r.csv[0].1.lines().count();
        assert_eq!(
            lines,
            1 + SCENARIOS.len() * KS.len() * chunk_grid(Scale::Quick).len()
        );
        assert!(!r.checks.is_empty());
    }
}
