//! Table II — each client's top three intermediate nodes by per-client
//! utilization.
//!
//! The paper's observation: "among the top three intermediate nodes for
//! each client, there is a fair amount of overlap … a handful of
//! intermediate nodes may be able to yield a majority of the
//! improvement", because well-connected relays are well-connected for
//! everyone.

use crate::report::{csv, Check, Report};
use crate::runner::MeasurementData;
use std::collections::BTreeMap;

/// Builds the Table II report.
pub fn report(data: &MeasurementData) -> Report {
    let util = data.utilization();

    let mut t = ir_stats::TextTable::new()
        .title("TABLE II: top three intermediate nodes per client (utilization)")
        .header(["client", "first", "second", "third"]);
    let mut rows: Vec<Vec<String>> = Vec::new();
    // How often each relay shows up in some client's top three.
    let mut top3_appearances: BTreeMap<String, usize> = BTreeMap::new();

    for &client in &data.clients {
        let top = util.top_for_client(client);
        if top.is_empty() {
            continue;
        }
        let fmt = |i: usize| -> String {
            top.get(i)
                .map(|(via, u)| format!("{} ({:.0}%)", data.name(*via), u * 100.0))
                .unwrap_or_else(|| "-".into())
        };
        for (via, _) in top.iter().take(3) {
            *top3_appearances
                .entry(data.name(*via).to_string())
                .or_insert(0) += 1;
        }
        t.row([data.name(client).to_string(), fmt(0), fmt(1), fmt(2)]);
        rows.push(vec![data.name(client).to_string(), fmt(0), fmt(1), fmt(2)]);
    }

    let mut body = t.render();

    // Overlap: number of distinct relays occupying all the top-3 slots.
    let slots: usize = data.clients.len() * 3;
    let distinct = top3_appearances.len();
    let mut overlap_list: Vec<(&String, &usize)> = top3_appearances.iter().collect();
    overlap_list.sort_by(|a, b| b.1.cmp(a.1));
    body.push('\n');
    body.push_str(&format!(
        "distinct relays across {} top-3 slots: {} (overlap factor {:.1}x)\n",
        slots,
        distinct,
        slots as f64 / distinct.max(1) as f64
    ));
    body.push_str("most-shared relays: ");
    body.push_str(
        &overlap_list
            .iter()
            .take(5)
            .map(|(n, c)| format!("{n} ({c})"))
            .collect::<Vec<_>>()
            .join(", "),
    );
    body.push('\n');

    let overlap_factor = slots as f64 / distinct.max(1) as f64;

    Report {
        id: "table2",
        title: "Table II: top intermediates per client".into(),
        body,
        csv: vec![(
            "top3".into(),
            csv(&["client", "first", "second", "third"], &rows),
        )],
        checks: vec![
            // "A fair amount of overlap": top-3 slots are covered by
            // meaningfully fewer distinct relays than slots.
            Check::banded(
                "top-3 overlap factor (slots per distinct relay)",
                2.0, // qualitative; the paper's table shows heavy reuse
                overlap_factor,
                1.3,
                f64::INFINITY,
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_measurement_study;
    use ir_core::SessionConfig;
    use ir_workload::Schedule;

    #[test]
    fn table2_lists_every_client() {
        let sc = ir_workload::build(
            23,
            &ir_workload::roster::CLIENTS[..5],
            &ir_workload::roster::INTERMEDIATES[..6],
            &ir_workload::roster::SERVERS[..1],
            ir_workload::Calibration::default(),
            false,
        );
        let data = run_measurement_study(
            &sc,
            0,
            Schedule::measurement_study().truncated(8),
            SessionConfig::paper_defaults(),
        );
        let r = report(&data);
        let text = r.render();
        for c in &data.clients {
            assert!(text.contains(data.name(*c)), "missing {}", data.name(*c));
        }
    }
}
