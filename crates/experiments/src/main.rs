//! `experiments` — CLI reproducing the paper's tables and figures.
//!
//! ```text
//! experiments <artefact> [--seed N] [--scale quick|paper] [--csv DIR]
//!             [--cal FILE] [--threads N] [--trace FILE] [--metrics]
//!             [--faults none|MTBF_SECS] [--cache-dir DIR|none]
//!
//! artefacts: fig1 fig2 fig3 fig4 fig5 fig6 table1 table2 table3
//!            variability overhead
//!            measurement (figs 1-5, tables 1-2, variability,
//!                         overhead on one shared run)
//!            selection   (fig 6 + table 3 on one shared run)
//!            sites       (per-site 33-49% range, extension)
//!            headroom    (oracle-attainable vs captured, extension)
//!            faults      (availability under overlay faults, extension)
//!            striping    (multi-source range striping vs the racing
//!                         session on the 2-relay variability grid,
//!                         including the stale-prediction penalty-tail
//!                         cells; stripe sets drawn from the policy
//!                         plane's best-k, extension)
//!            megaflow    (partition-sharded engine at scale: the
//!                         mini fan-in at --scale quick, 1.01M flows
//!                         over 10,401 nodes at --scale paper;
//!                         --threads N > 1 runs it on the sharded
//!                         engine — results are bit-identical at any
//!                         thread count)
//!            tournament  (policy × scenario table: every path-selection
//!                         policy on every tournament scenario, with
//!                         improvement, penalty rate, probe overhead and
//!                         multi-hop share per cell)
//!            soak        (relay load study over real loopback sockets:
//!                         N concurrent racing downloads through one
//!                         event-driven relay daemon — 250 clients at
//!                         --scale quick, 2000 at --scale paper — with
//!                         goodput and p99 accept-to-first-byte from
//!                         the relay's own spans; the only wall-clock
//!                         artefact, cached as a record of its run and
//!                         excluded from `sweep`/`all`)
//!            scenario    (workload inspection, no study)
//!            robustness  (headline numbers across seeds)
//!            sweep       (every artefact through the dependency-aware
//!                         scheduler: shared studies execute once, the
//!                         content-addressed cache under --cache-dir
//!                         (default results/.cache, "none" disables)
//!                         serves repeat runs byte-identically)
//!            cache-gc    (artefact-cache maintenance: drop corrupt
//!                         entries, evict oldest until under
//!                         --max-bytes)
//!            bench-gate  (perf-regression runner: times the micro +
//!                         figures benchmark groups, records the
//!                         engine solve split on the pinned Fig 1
//!                         study, enforces the boundary-count canary,
//!                         writes BENCH_PR4.json; --out FILE overrides;
//!                         also times the pinned mini sweep cold vs
//!                         warm (BENCH_PR5.json), the path plane
//!                         (BENCH_PR6.json), the megaflow study
//!                         incremental vs sharded (BENCH_PR7.json),
//!                         the relay soak, event reactor vs threaded
//!                         baseline (BENCH_PR9.json), and the pinned
//!                         striping sweep, striped vs raced
//!                         (BENCH_PR10.json))
//!            all         (everything except bench-gate, no cache)
//! ```
//!
//! `--threads 0` restores the default worker count (one per available
//! core) after an earlier cap in the same process.
//!
//! `--faults MTBF_SECS` injects a seeded overlay fault plan (link MTBF
//! in seconds) into the measurement study and enables session failover;
//! `--faults none` installs the empty plan, which is a provable no-op —
//! artefacts stay byte-identical to a run without the flag.
//!
//! `--trace FILE` writes a Chrome `trace_event` JSON of the study to
//! FILE (open in `chrome://tracing` or Perfetto); `--metrics` prints a
//! telemetry counter/histogram section after the reports. Both are
//! strictly observational: artefact numbers are bit-identical with and
//! without them.

use ir_experiments::{
    measurement_reports, measurement_study_default_traced, selection_reports,
    selection_study_default_traced, Report, Scale, FIG6_KS,
};
use ir_telemetry::Telemetry;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    artefact: String,
    seed: u64,
    scale: Scale,
    csv_dir: Option<PathBuf>,
    cal: Option<ir_workload::Calibration>,
    threads: Option<usize>,
    trace_file: Option<PathBuf>,
    metrics: bool,
    /// `--faults`: `None` = flag absent, `Some(0)` = "none" (empty
    /// plan), `Some(n)` = overlay faults at link MTBF `n` seconds.
    faults: Option<u64>,
    /// `--out`: output path for `bench-gate` (default BENCH_PR4.json).
    out: PathBuf,
    /// `--cache-dir`: artefact-cache location for `sweep`/`cache-gc`;
    /// `None` means caching disabled (`--cache-dir none`).
    cache_dir: Option<PathBuf>,
    /// `--max-bytes`: `cache-gc` eviction budget.
    gc_max_bytes: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: experiments <artefact> [--seed N] [--scale quick|paper] [--csv DIR] [--cal FILE]\n\
         \x20                           [--threads N] [--trace FILE] [--metrics]\n\
         \x20                           [--faults none|MTBF_SECS] [--out FILE]\n\
         \x20                           [--cache-dir DIR|none] [--max-bytes N]\n\
         artefacts: fig1 fig2 fig3 fig4 fig5 fig6 table1 table2 table3\n\
         \x20          variability overhead\n\
         \x20          measurement selection sites headroom faults striping megaflow\n\
         \x20          tournament soak scenario robustness sweep cache-gc bench-gate all"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut argv = std::env::args().skip(1);
    let artefact = argv.next().unwrap_or_else(|| usage());
    let mut args = Args {
        artefact,
        seed: 2007, // the venue year; any seed works
        scale: Scale::Quick,
        csv_dir: None,
        cal: None,
        threads: None,
        trace_file: None,
        metrics: false,
        faults: None,
        out: PathBuf::from("BENCH_PR4.json"),
        cache_dir: Some(PathBuf::from("results/.cache")),
        gc_max_bytes: 256 * 1024 * 1024,
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--seed" => {
                args.seed = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--scale" => {
                args.scale = match argv.next().as_deref() {
                    Some("quick") => Scale::Quick,
                    Some("paper") => Scale::Paper,
                    _ => usage(),
                };
            }
            "--csv" => {
                args.csv_dir = Some(PathBuf::from(argv.next().unwrap_or_else(|| usage())));
            }
            "--cal" => {
                let path = argv.next().unwrap_or_else(|| usage());
                let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(2);
                });
                args.cal = Some(ir_workload::from_kv(&text).unwrap_or_else(|e| {
                    eprintln!("bad calibration file {path}: {e}");
                    std::process::exit(2);
                }));
            }
            "--threads" => {
                // 0 is meaningful: restore the available-parallelism
                // default after an earlier cap.
                args.threads = Some(
                    argv.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--trace" => {
                args.trace_file = Some(PathBuf::from(argv.next().unwrap_or_else(|| usage())));
            }
            "--metrics" => {
                args.metrics = true;
            }
            "--out" => {
                args.out = PathBuf::from(argv.next().unwrap_or_else(|| usage()));
            }
            "--cache-dir" => {
                args.cache_dir = match argv.next().as_deref() {
                    Some("none") => None,
                    Some(dir) => Some(PathBuf::from(dir)),
                    None => usage(),
                };
            }
            "--max-bytes" => {
                args.gc_max_bytes = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--faults" => {
                args.faults = match argv.next().as_deref() {
                    Some("none") => Some(0),
                    Some(v) => Some(
                        v.parse::<u64>()
                            .ok()
                            .filter(|&n| n > 0)
                            .unwrap_or_else(|| usage()),
                    ),
                    None => usage(),
                };
            }
            _ => usage(),
        }
    }
    args
}

fn emit(reports: &[Report], csv_dir: &Option<PathBuf>) -> bool {
    let mut ok = true;
    for r in reports {
        println!("{}", r.render());
        if let Some(dir) = csv_dir {
            match r.write_csv(dir) {
                Ok(files) => {
                    for f in files {
                        println!("wrote {}", f.display());
                    }
                }
                Err(e) => {
                    eprintln!("csv write failed: {e}");
                    ok = false;
                }
            }
        }
        if !r.all_pass() {
            ok = false;
        }
        println!();
    }
    ok
}

fn main() -> ExitCode {
    let args = parse_args();
    if let Some(n) = args.threads {
        ir_experiments::set_worker_threads(n);
    }
    if args.artefact == "bench-gate" {
        return match ir_experiments::bench_gate::run(&args.out) {
            Ok(_) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("bench-gate FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.artefact == "cache-gc" {
        let Some(dir) = &args.cache_dir else {
            eprintln!("cache-gc needs a cache directory (omit --cache-dir none)");
            return ExitCode::FAILURE;
        };
        return match ir_artifact::ArtifactCache::open(dir).and_then(|c| c.gc(args.gc_max_bytes)) {
            Ok(r) => {
                println!(
                    "cache-gc {}: scanned {}, removed {} corrupt, evicted {}, {} bytes kept",
                    dir.display(),
                    r.scanned,
                    r.corrupt_removed,
                    r.evicted,
                    r.bytes_after
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cache-gc failed for {}: {e}", dir.display());
                ExitCode::FAILURE
            }
        };
    }
    // One shared handle for every study this invocation runs; None
    // (the default) keeps every layer on its no-op path.
    let tel: Option<Arc<Telemetry>> = if args.trace_file.is_some() || args.metrics {
        Some(Arc::new(Telemetry::new()))
    } else {
        None
    };
    let needs_measurement = matches!(
        args.artefact.as_str(),
        "fig1"
            | "fig2"
            | "fig3"
            | "fig4"
            | "fig5"
            | "table1"
            | "table2"
            | "variability"
            | "overhead"
            | "measurement"
            | "all"
    );
    let needs_selection = matches!(
        args.artefact.as_str(),
        "fig6" | "table3" | "selection" | "all"
    );
    let needs_sites = matches!(args.artefact.as_str(), "sites" | "all");
    let needs_headroom = matches!(args.artefact.as_str(), "headroom" | "all");
    let needs_faults = matches!(args.artefact.as_str(), "faults" | "all");
    let needs_striping = matches!(args.artefact.as_str(), "striping" | "all");
    let needs_megaflow = matches!(args.artefact.as_str(), "megaflow" | "all");
    let needs_tournament = matches!(args.artefact.as_str(), "tournament" | "all");
    let needs_scenario = args.artefact == "scenario";
    let needs_robustness = matches!(args.artefact.as_str(), "robustness" | "all");
    let needs_sweep = args.artefact == "sweep";
    // Real sockets + wall clock: the soak never rides along with the
    // deterministic `all`/`sweep` bundles.
    let needs_soak = args.artefact == "soak";
    if !needs_measurement
        && !needs_selection
        && !needs_sites
        && !needs_headroom
        && !needs_faults
        && !needs_striping
        && !needs_megaflow
        && !needs_tournament
        && !needs_scenario
        && !needs_robustness
        && !needs_sweep
        && !needs_soak
    {
        usage();
    }

    let mut ok = true;

    if needs_sweep {
        let cache = match &args.cache_dir {
            Some(dir) => match ir_artifact::ArtifactCache::open(dir) {
                Ok(c) => Some(c),
                Err(e) => {
                    eprintln!("cannot open cache at {}: {e}", dir.display());
                    return ExitCode::FAILURE;
                }
            },
            None => None,
        };
        eprintln!(
            "running artefact sweep (seed {}, {:?} scale, cache: {})...",
            args.seed,
            args.scale,
            match &args.cache_dir {
                Some(d) => d.display().to_string(),
                None => "disabled".into(),
            }
        );
        let t0 = std::time::Instant::now();
        let plan = ir_experiments::sweep::full_plan(args.seed, args.scale, tel.clone());
        let report = match ir_experiments::sweep::run_sweep(
            plan,
            cache.as_ref(),
            args.csv_dir.as_deref(),
            tel.as_ref(),
        ) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("sweep failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        for a in &report.artefacts {
            println!("{}", a.output.text);
            println!();
        }
        println!("== sweep summary ==");
        for s in &report.studies {
            println!(
                "study    {:<24} {:>12?} {:>9.1}ms  {}",
                s.name,
                s.source,
                s.wall.as_secs_f64() * 1e3,
                s.fingerprint.to_hex()
            );
        }
        for a in &report.artefacts {
            println!(
                "artefact {:<24} {:>12?} {:>9.1}ms  {}",
                a.name,
                a.source,
                a.wall.as_secs_f64() * 1e3,
                a.fingerprint.to_hex()
            );
        }
        println!(
            "{} artefacts ({} from cache), {} studies executed; cache {} hits / {} misses / \
             {} stores / {} corrupt (hit rate {:.0}%); wall {:.1}s",
            report.artefacts.len(),
            report.artefact_hits(),
            report.studies_executed(),
            report.cache_hits,
            report.cache_misses,
            report.cache_stores,
            report.cache_corrupt,
            report.hit_rate() * 100.0,
            t0.elapsed().as_secs_f64()
        );
        println!();
        ok &= report.all_pass();
    }

    if needs_soak {
        let cache = match &args.cache_dir {
            Some(dir) => match ir_artifact::ArtifactCache::open(dir) {
                Ok(c) => Some(c),
                Err(e) => {
                    eprintln!("cannot open cache at {}: {e}", dir.display());
                    return ExitCode::FAILURE;
                }
            },
            None => None,
        };
        let cfg = ir_experiments::sweep::soak_config(args.scale);
        eprintln!(
            "running relay soak (seed {}, {:?} scale, {} clients)...",
            args.seed, args.scale, cfg.clients
        );
        let t0 = std::time::Instant::now();
        let plan = ir_experiments::sweep::soak_plan(args.seed, args.scale);
        let report = match ir_experiments::sweep::run_sweep(
            plan,
            cache.as_ref(),
            args.csv_dir.as_deref(),
            tel.as_ref(),
        ) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("soak failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        for a in &report.artefacts {
            println!("{}", a.output.text);
            println!();
        }
        eprintln!(
            "soak: {:?} in {:.1}s",
            report.artefacts[0].source,
            t0.elapsed().as_secs_f64()
        );
        ok &= report.all_pass();
    }

    if needs_measurement {
        eprintln!(
            "running measurement study (seed {}, {:?} scale)...",
            args.seed, args.scale
        );
        let t0 = std::time::Instant::now();
        let data = match (&args.cal, args.faults) {
            (None, None) => measurement_study_default_traced(args.seed, args.scale, tel.clone()),
            (cal, faults) => {
                // Decomposed default path so that `--faults none` and
                // a custom calibration share one code path; with the
                // empty plan it is byte-identical to the branch above.
                let mut scenario = match cal {
                    None => ir_workload::planetlab_study(args.seed),
                    Some(cal) => ir_workload::build(
                        args.seed,
                        ir_workload::roster::CLIENTS,
                        ir_workload::roster::INTERMEDIATES,
                        ir_workload::roster::SERVERS,
                        *cal,
                        false,
                    ),
                };
                let schedule = ir_workload::Schedule::measurement_study()
                    .spread(args.scale.measurement_transfers());
                let mut session = ir_core::SessionConfig::paper_defaults();
                if let Some(mtbf) = faults {
                    let plan = ir_experiments::faults::cli_fault_plan(
                        &scenario, mtbf, schedule, args.seed,
                    );
                    scenario.network.set_fault_plan(&plan);
                    if mtbf > 0 {
                        session.failover = Some(ir_core::FailoverConfig::paper_defaults());
                    }
                }
                ir_experiments::run_measurement_study_traced(
                    &scenario,
                    0,
                    schedule,
                    session,
                    tel.clone(),
                )
            }
        };
        eprintln!(
            "measurement study: {} records in {:.1}s",
            data.all_records().count(),
            t0.elapsed().as_secs_f64()
        );
        let reports = measurement_reports(&data);
        let wanted: Vec<Report> = reports
            .into_iter()
            .filter(|r| {
                matches!(args.artefact.as_str(), "measurement" | "all") || r.id == args.artefact
            })
            .collect();
        ok &= emit(&wanted, &args.csv_dir);
    }

    if needs_selection {
        eprintln!(
            "running selection study (seed {}, {:?} scale)...",
            args.seed, args.scale
        );
        let t0 = std::time::Instant::now();
        let data = selection_study_default_traced(args.seed, args.scale, FIG6_KS, tel.clone());
        eprintln!(
            "selection study: {} runs in {:.1}s",
            data.runs.len(),
            t0.elapsed().as_secs_f64()
        );
        let reports = selection_reports(&data);
        let wanted: Vec<Report> = reports
            .into_iter()
            .filter(|r| {
                matches!(args.artefact.as_str(), "selection" | "all") || r.id == args.artefact
            })
            .collect();
        ok &= emit(&wanted, &args.csv_dir);
    }

    if needs_sites {
        eprintln!("running per-site study (seed {})...", args.seed);
        let transfers = match args.scale {
            Scale::Quick => 8,
            Scale::Paper => 25,
        };
        let r = ir_experiments::sites::report(args.seed, transfers);
        ok &= emit(&[r], &args.csv_dir);
    }

    if needs_faults {
        eprintln!(
            "running fault-plane study (seed {}, {:?} scale)...",
            args.seed, args.scale
        );
        let r = ir_experiments::faults::report(args.seed, args.scale);
        ok &= emit(&[r], &args.csv_dir);
    }

    if needs_striping {
        eprintln!(
            "running striping study (seed {}, {:?} scale)...",
            args.seed, args.scale
        );
        let r = ir_experiments::striping::report(args.seed, args.scale);
        ok &= emit(&[r], &args.csv_dir);
    }

    if needs_megaflow {
        let cfg = ir_experiments::sweep::megaflow_config(args.scale);
        // The engine is an execution knob: any thread count produces
        // bit-identical results (the differential suite's guarantee),
        // so `--threads` only selects how the study is *run*.
        let engine = match args.threads {
            Some(t) if t > 1 => ir_simnet::sim::EngineMode::Sharded { threads: t },
            _ => ir_simnet::sim::EngineMode::Incremental,
        };
        eprintln!(
            "running megaflow study (seed {}, {:?} scale, {} flows, {:?})...",
            args.seed,
            args.scale,
            cfg.total_flows(),
            engine
        );
        let t0 = std::time::Instant::now();
        let r = ir_experiments::megaflow::report(args.seed, &cfg, engine);
        eprintln!("megaflow study: done in {:.1}s", t0.elapsed().as_secs_f64());
        ok &= emit(&[r], &args.csv_dir);
    }

    if needs_tournament {
        eprintln!(
            "running policy tournament (seed {}, {:?} scale)...",
            args.seed, args.scale
        );
        let r = ir_experiments::tournament::report(args.seed, args.scale);
        ok &= emit(&[r], &args.csv_dir);
    }

    if needs_robustness {
        eprintln!("running seed-robustness sweep...");
        let r = ir_experiments::robustness::report(ir_experiments::robustness::DEFAULT_SEEDS);
        ok &= emit(&[r], &args.csv_dir);
    }

    if needs_scenario {
        let r = ir_experiments::inspect::report(args.seed);
        ok &= emit(&[r], &args.csv_dir);
    }

    if needs_headroom {
        eprintln!("running oracle headroom study (seed {})...", args.seed);
        let transfers = match args.scale {
            Scale::Quick => 30,
            Scale::Paper => 120,
        };
        let r = ir_experiments::headroom::report(args.seed, transfers);
        ok &= emit(&[r], &args.csv_dir);
    }

    if let Some(tel) = &tel {
        if let Some(path) = &args.trace_file {
            match std::fs::write(path, tel.chrome_trace()) {
                Ok(()) => eprintln!(
                    "wrote {} trace events to {}",
                    tel.tracer.len(),
                    path.display()
                ),
                Err(e) => {
                    eprintln!("trace write failed for {}: {e}", path.display());
                    ok = false;
                }
            }
        }
        if args.metrics {
            println!("== telemetry ==");
            print!("{}", tel.metrics.snapshot().render_text());
            println!();
        }
    }

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
