//! `experiments` — CLI reproducing the paper's tables and figures.
//!
//! ```text
//! experiments <artefact> [--seed N] [--scale quick|paper] [--csv DIR]
//!
//! artefacts: fig1 fig2 fig3 fig4 fig5 fig6 table1 table2 table3
//!            measurement (figs 1-5 + tables 1-2 on one shared run)
//!            selection   (fig 6 + table 3 on one shared run)
//!            sites       (per-site 33-49% range, extension)
//!            headroom    (oracle-attainable vs captured, extension)
//!            all         (everything)
//! ```

use ir_experiments::{
    measurement_reports, measurement_study_default, selection_reports,
    selection_study_default, Report, Scale, FIG6_KS,
};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    artefact: String,
    seed: u64,
    scale: Scale,
    csv_dir: Option<PathBuf>,
    cal: Option<ir_workload::Calibration>,
}

fn usage() -> ! {
    eprintln!(
        "usage: experiments <artefact> [--seed N] [--scale quick|paper] [--csv DIR] [--cal FILE]\n\
         artefacts: fig1 fig2 fig3 fig4 fig5 fig6 table1 table2 table3\n\
         \x20          measurement selection sites headroom scenario robustness all"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut argv = std::env::args().skip(1);
    let artefact = argv.next().unwrap_or_else(|| usage());
    let mut args = Args {
        artefact,
        seed: 2007, // the venue year; any seed works
        scale: Scale::Quick,
        csv_dir: None,
        cal: None,
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--seed" => {
                args.seed = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--scale" => {
                args.scale = match argv.next().as_deref() {
                    Some("quick") => Scale::Quick,
                    Some("paper") => Scale::Paper,
                    _ => usage(),
                };
            }
            "--csv" => {
                args.csv_dir = Some(PathBuf::from(argv.next().unwrap_or_else(|| usage())));
            }
            "--cal" => {
                let path = argv.next().unwrap_or_else(|| usage());
                let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(2);
                });
                args.cal = Some(ir_workload::from_kv(&text).unwrap_or_else(|e| {
                    eprintln!("bad calibration file {path}: {e}");
                    std::process::exit(2);
                }));
            }
            _ => usage(),
        }
    }
    args
}

fn emit(reports: &[Report], csv_dir: &Option<PathBuf>) -> bool {
    let mut ok = true;
    for r in reports {
        println!("{}", r.render());
        if let Some(dir) = csv_dir {
            match r.write_csv(dir) {
                Ok(files) => {
                    for f in files {
                        println!("wrote {}", f.display());
                    }
                }
                Err(e) => {
                    eprintln!("csv write failed: {e}");
                    ok = false;
                }
            }
        }
        if !r.all_pass() {
            ok = false;
        }
        println!();
    }
    ok
}

fn main() -> ExitCode {
    let args = parse_args();
    let needs_measurement = matches!(
        args.artefact.as_str(),
        "fig1" | "fig2" | "fig3" | "fig4" | "fig5" | "table1" | "table2" | "variability"
            | "overhead" | "measurement" | "all"
    );
    let needs_selection = matches!(
        args.artefact.as_str(),
        "fig6" | "table3" | "selection" | "all"
    );
    let needs_sites = matches!(args.artefact.as_str(), "sites" | "all");
    let needs_headroom = matches!(args.artefact.as_str(), "headroom" | "all");
    let needs_scenario = args.artefact == "scenario";
    let needs_robustness = matches!(args.artefact.as_str(), "robustness" | "all");
    if !needs_measurement
        && !needs_selection
        && !needs_sites
        && !needs_headroom
        && !needs_scenario
        && !needs_robustness
    {
        usage();
    }

    let mut ok = true;

    if needs_measurement {
        eprintln!(
            "running measurement study (seed {}, {:?} scale)...",
            args.seed, args.scale
        );
        let t0 = std::time::Instant::now();
        let data = match &args.cal {
            None => measurement_study_default(args.seed, args.scale),
            Some(cal) => {
                let scenario = ir_workload::build(
                    args.seed,
                    ir_workload::roster::CLIENTS,
                    ir_workload::roster::INTERMEDIATES,
                    ir_workload::roster::SERVERS,
                    *cal,
                    false,
                );
                ir_experiments::run_measurement_study(
                    &scenario,
                    0,
                    ir_workload::Schedule::measurement_study()
                        .spread(args.scale.measurement_transfers()),
                    ir_core::SessionConfig::paper_defaults(),
                )
            }
        };
        eprintln!(
            "measurement study: {} records in {:.1}s",
            data.all_records().count(),
            t0.elapsed().as_secs_f64()
        );
        let reports = measurement_reports(&data);
        let wanted: Vec<Report> = reports
            .into_iter()
            .filter(|r| {
                matches!(args.artefact.as_str(), "measurement" | "all") || r.id == args.artefact
            })
            .collect();
        ok &= emit(&wanted, &args.csv_dir);
    }

    if needs_selection {
        eprintln!(
            "running selection study (seed {}, {:?} scale)...",
            args.seed, args.scale
        );
        let t0 = std::time::Instant::now();
        let data = selection_study_default(args.seed, args.scale, FIG6_KS);
        eprintln!(
            "selection study: {} runs in {:.1}s",
            data.runs.len(),
            t0.elapsed().as_secs_f64()
        );
        let reports = selection_reports(&data);
        let wanted: Vec<Report> = reports
            .into_iter()
            .filter(|r| {
                matches!(args.artefact.as_str(), "selection" | "all") || r.id == args.artefact
            })
            .collect();
        ok &= emit(&wanted, &args.csv_dir);
    }

    if needs_sites {
        eprintln!("running per-site study (seed {})...", args.seed);
        let transfers = match args.scale {
            Scale::Quick => 8,
            Scale::Paper => 25,
        };
        let r = ir_experiments::sites::report(args.seed, transfers);
        ok &= emit(&[r], &args.csv_dir);
    }

    if needs_robustness {
        eprintln!("running seed-robustness sweep...");
        let r = ir_experiments::robustness::report(ir_experiments::robustness::DEFAULT_SEEDS);
        ok &= emit(&[r], &args.csv_dir);
    }

    if needs_scenario {
        let r = ir_experiments::inspect::report(args.seed);
        ok &= emit(&[r], &args.csv_dir);
    }

    if needs_headroom {
        eprintln!("running oracle headroom study (seed {})...", args.seed);
        let transfers = match args.scale {
            Scale::Quick => 30,
            Scale::Paper => 120,
        };
        let r = ir_experiments::headroom::report(args.seed, transfers);
        ok &= emit(&[r], &args.csv_dir);
    }

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
