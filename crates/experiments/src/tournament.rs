//! Policy tournament: every path-selection policy against every
//! tournament scenario, through the `ir-policy` path plane.
//!
//! The paper fixes one policy (random relay sets) and one path shape
//! (1-hop); the tournament crosses the pluggable [`PathSelector`]
//! implementations with scenarios chosen to separate them:
//!
//! * **star** — the paper's calibrated 1-hop geometry (3 clients ×
//!   6 relays × 1 server). Multi-hop chains cannot exist here; the
//!   interesting axis is probe overhead vs captured improvement.
//! * **ridge** — a hand-built topology whose only fat route is the
//!   2-hop chain `client → r0 → r1 → server`: r0 has a fat uplink but
//!   a thin downlink, r1 the reverse, and a fat ridge link joins them.
//!   Every 1-hop path bottlenecks; only a selector that can emit
//!   chains (k-shortest) reaches the fast route.
//!
//! Per (policy, scenario) cell we report mean improvement, the Table I
//! penalty rate, probe overhead (indirect paths probed per transfer,
//! from the per-policy telemetry counters), and the share of transfers
//! that settled on a multi-hop chain.
//!
//! Each policy is its **own study** in the sweep plan
//! ([`crate::sweep::tournament_plan`]): its fingerprint covers the
//! policy's config but not the other policies', so adding a policy to
//! the roster never invalidates — or re-runs — the cached cells of the
//! existing ones.

use crate::report::{csv, Check, Report};
use crate::runner::Scale;
use ir_core::{
    FirstPortion, RandomSet, SessionConfig, SimTransport, Transport, UtilizationWeighted,
};
use ir_policy::{
    run_selector_session_traced, AdaptiveConfig, AdaptiveLearner, Backpressure, BackpressureConfig,
    KShortest, KShortestConfig, PathSelector, PolicySelector,
};
use ir_simnet::bandwidth::ConstantProcess;
use ir_simnet::sim::Network;
use ir_simnet::time::{SimDuration, SimTime};
use ir_simnet::topology::{NodeId, NodeKind, Topology};
use ir_stats::Summary;
use ir_telemetry::Telemetry;
use ir_workload::{build, roster, Calibration, Schedule};

/// The policy roster, in report order. Names must match
/// [`PathSelector::name`] of the selector [`make_selector`] builds.
pub const POLICIES: &[&str] = &[
    "random-set",
    "utilization-weighted",
    "k-shortest",
    "adaptive",
    "backpressure",
];

/// The scenario roster, in report order.
pub const SCENARIOS: &[&str] = &["star", "ridge"];

/// Relay candidates per decision, for every policy that takes a k —
/// the tournament holds probe budget roughly comparable across cells.
pub const TOURNAMENT_K: usize = 3;

/// One (policy, scenario) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct TournamentCell {
    /// Policy name (a [`POLICIES`] entry).
    pub policy: String,
    /// Scenario name (a [`SCENARIOS`] entry).
    pub scenario: String,
    /// Transfers run.
    pub transfers: usize,
    /// Mean improvement (%) over transfers that chose indirect (NaN
    /// when none did).
    pub mean_improvement_pct: f64,
    /// Transfers that chose an indirect path (%).
    pub indirect_pct: f64,
    /// Table I penalty rate: transfers where the chosen indirect path
    /// underperformed direct (% of all transfers).
    pub penalty_rate_pct: f64,
    /// Probe overhead: indirect paths probed per transfer (from the
    /// per-policy `policy_probe_paths` counter).
    pub probe_paths_per_transfer: f64,
    /// Transfers that settled on a 2+-hop chain (%).
    pub multi_hop_pct: f64,
}

/// Builds the selector a tournament cell runs. `seed` feeds the
/// stochastic policies; the deterministic ones ignore it.
pub fn make_selector(policy: &str, seed: u64) -> Box<dyn PathSelector> {
    match policy {
        "random-set" => Box::new(PolicySelector::new(RandomSet::new(TOURNAMENT_K, seed))),
        "utilization-weighted" => Box::new(PolicySelector::new(UtilizationWeighted::new(
            TOURNAMENT_K,
            seed,
        ))),
        "k-shortest" => Box::new(KShortest::new(kshortest_config())),
        "adaptive" => Box::new(AdaptiveLearner::new(AdaptiveConfig {
            seed,
            ..adaptive_config()
        })),
        "backpressure" => Box::new(Backpressure::new(backpressure_config())),
        other => panic!("unknown tournament policy {other:?}"),
    }
}

/// The k-shortest config the tournament runs (also hashed into its
/// study fingerprint).
pub fn kshortest_config() -> KShortestConfig {
    KShortestConfig {
        k: TOURNAMENT_K,
        ..KShortestConfig::default()
    }
}

/// The adaptive-learner config the tournament runs, before the
/// per-task seed is spliced in.
pub fn adaptive_config() -> AdaptiveConfig {
    AdaptiveConfig {
        k: TOURNAMENT_K,
        ..AdaptiveConfig::default()
    }
}

/// The backpressure config the tournament runs.
pub fn backpressure_config() -> BackpressureConfig {
    BackpressureConfig {
        k: TOURNAMENT_K,
        ..BackpressureConfig::default()
    }
}

/// Transfers per (client, scenario) at a scale.
pub fn tournament_transfers(scale: Scale) -> u64 {
    match scale {
        Scale::Quick => 10,
        Scale::Paper => 40,
    }
}

/// The session config every tournament cell runs.
pub fn tournament_session() -> SessionConfig {
    SessionConfig::paper_defaults()
}

/// A tournament scenario: a sealed network plus its actors.
pub struct TournamentScenario {
    /// Scenario name (a [`SCENARIOS`] entry).
    pub name: &'static str,
    /// The network, bandwidth processes attached.
    pub network: Network,
    /// Clients, in schedule order.
    pub clients: Vec<NodeId>,
    /// The relay roster handed to selectors.
    pub relays: Vec<NodeId>,
    /// The single destination server.
    pub server: NodeId,
}

/// Builds a named tournament scenario.
pub fn scenario(name: &str, seed: u64) -> TournamentScenario {
    match name {
        "star" => star_scenario(seed),
        "ridge" => ridge_scenario(),
        other => panic!("unknown tournament scenario {other:?}"),
    }
}

/// The paper's calibrated 1-hop star: 3 clients × 6 relays × 1 server,
/// Low/Medium clients as in §4.
fn star_scenario(seed: u64) -> TournamentScenario {
    let s = build(
        seed,
        &roster::CLIENTS[..3],
        &roster::INTERMEDIATES[..6],
        &roster::SERVERS[..1],
        Calibration::default(),
        true,
    );
    TournamentScenario {
        name: "star",
        network: s.network,
        clients: s.clients,
        relays: s.relays,
        server: s.servers[0],
    }
}

/// Megabits per second, in bytes per second.
const MBPS: f64 = 1e6 / 8.0;

/// The ridge: the only fat route from either client to the server is
/// the 2-hop chain through `r0 → r1`, and it is also the
/// lowest-latency indirect route, so a latency-driven chain generator
/// ranks it first. Every 1-hop path is a modest 3 Mbps — better than
/// the 2 Mbps direct path, so 1-hop policies still capture *some*
/// improvement, just far less than the chain. Latencies in ms, rates
/// in Mbps:
///
/// ```text
///   c* --40ms/2--> s                      (direct)
///   c* --5ms/20--> r0 --30ms/3--> s       (fat up, thin down)
///   c* --30ms/3--> r1 --5ms/20--> s       (thin up, fat down)
///   c* --30ms/3--> r2 --30ms/3--> s       (thin both ways)
///   r0 --2ms/20--> r1                     (the ridge)
/// ```
fn ridge_scenario() -> TournamentScenario {
    let mut t = Topology::new();
    let c0 = t.add_node("ridge-c0", NodeKind::Client);
    let c1 = t.add_node("ridge-c1", NodeKind::Client);
    let s = t.add_node("ridge-s", NodeKind::Server);
    let r0 = t.add_node("ridge-r0", NodeKind::Intermediate);
    let r1 = t.add_node("ridge-r1", NodeKind::Intermediate);
    let r2 = t.add_node("ridge-r2", NodeKind::Intermediate);
    let ms = |n: u64| SimDuration::from_millis(n);
    let mut planned: Vec<(ir_simnet::topology::LinkId, f64)> = Vec::new();
    for &c in &[c0, c1] {
        planned.push((t.add_link(c, s, ms(40)), 2.0));
        planned.push((t.add_link(c, r0, ms(5)), 20.0));
        planned.push((t.add_link(c, r1, ms(30)), 3.0));
        planned.push((t.add_link(c, r2, ms(30)), 3.0));
    }
    planned.push((t.add_link(r0, s, ms(30)), 3.0));
    planned.push((t.add_link(r1, s, ms(5)), 20.0));
    planned.push((t.add_link(r2, s, ms(30)), 3.0));
    planned.push((t.add_link(r0, r1, ms(2)), 20.0));
    let mut network = Network::new(t, 1.0);
    for (l, mbps) in planned {
        network.set_link_process(l, Box::new(ConstantProcess::new(mbps * MBPS)));
    }
    TournamentScenario {
        name: "ridge",
        network,
        clients: vec![c0, c1],
        relays: vec![r0, r1, r2],
        server: s,
    }
}

/// Runs one policy through every tournament scenario: the body of that
/// policy's sweep study. One selector instance per (scenario, client)
/// task, mirroring the relay-plane runner; each task gets a fresh
/// clone of the scenario network.
pub fn run_policy(seed: u64, scale: Scale, policy: &str) -> Vec<TournamentCell> {
    let schedule = Schedule::measurement_study().spread(tournament_transfers(scale));
    let session = tournament_session();
    SCENARIOS
        .iter()
        .map(|&name| {
            let sc = scenario(name, seed);
            let tel = Telemetry::new();
            let topo = sc.network.topology().clone();
            let mut records = Vec::new();
            for (ci, &client) in sc.clients.iter().enumerate() {
                let policy_seed = seed ^ ((ci as u64) << 16) ^ 0x70AA;
                let mut selector = make_selector(policy, policy_seed);
                let mut transport = SimTransport::new(sc.network.clone());
                let mut predictor = FirstPortion;
                for (i, at) in schedule.instants(SimTime::ZERO).enumerate() {
                    let target = at.max(transport.now());
                    transport.network_mut().advance_until(target);
                    records.push(run_selector_session_traced(
                        &mut transport,
                        selector.as_mut(),
                        &mut predictor,
                        client,
                        sc.server,
                        &sc.relays,
                        &topo,
                        i as u64,
                        &session,
                        Some(&tel),
                    ));
                }
            }
            cell_stats(policy, name, &records, &tel)
        })
        .collect()
}

/// Runs the whole tournament: every policy, every scenario. The sweep
/// path runs [`run_policy`] per cached study instead; this entry is
/// for the CLI and the goldens.
pub fn run(seed: u64, scale: Scale) -> Vec<TournamentCell> {
    POLICIES
        .iter()
        .flat_map(|&p| run_policy(seed, scale, p))
        .collect()
}

fn cell_stats(
    policy: &str,
    scenario: &str,
    records: &[ir_core::TransferRecord],
    tel: &Telemetry,
) -> TournamentCell {
    let transfers = records.len();
    let indirect: Vec<_> = records.iter().filter(|r| r.chose_indirect()).collect();
    let imps: Vec<f64> = indirect
        .iter()
        .map(|r| r.improvement_pct())
        .filter(|v| v.is_finite())
        .collect();
    let penalties = records.iter().filter(|r| r.is_penalty()).count();
    let multi_hop = records
        .iter()
        .filter(|r| r.selected.hop_count() >= 2)
        .count();
    let labels = vec![("policy", policy.to_string())];
    let snap = tel.metrics.snapshot();
    let probe_paths = snap.counter("policy_probe_paths", &labels).unwrap_or(0);
    TournamentCell {
        policy: policy.to_string(),
        scenario: scenario.to_string(),
        transfers,
        mean_improvement_pct: Summary::of(&imps).map(|s| s.mean).unwrap_or(f64::NAN),
        indirect_pct: indirect.len() as f64 / transfers.max(1) as f64 * 100.0,
        penalty_rate_pct: penalties as f64 / transfers.max(1) as f64 * 100.0,
        probe_paths_per_transfer: probe_paths as f64 / transfers.max(1) as f64,
        multi_hop_pct: multi_hop as f64 / transfers.max(1) as f64 * 100.0,
    }
}

/// Builds the tournament report.
pub fn report(seed: u64, scale: Scale) -> Report {
    report_of(&run(seed, scale))
}

/// Builds the tournament report from precomputed (possibly
/// cache-restored) cells.
pub fn report_of(cells: &[TournamentCell]) -> Report {
    let mut table = ir_stats::TextTable::new()
        .title("policy tournament: improvement, penalties, probe overhead")
        .header([
            "policy",
            "scenario",
            "transfers",
            "improve %",
            "indirect %",
            "penalty %",
            "probes/xfer",
            "2+hop %",
        ]);
    let mut rows = Vec::new();
    for c in cells {
        table.row([
            c.policy.clone(),
            c.scenario.clone(),
            c.transfers.to_string(),
            format!("{:.1}", c.mean_improvement_pct),
            format!("{:.1}", c.indirect_pct),
            format!("{:.1}", c.penalty_rate_pct),
            format!("{:.2}", c.probe_paths_per_transfer),
            format!("{:.1}", c.multi_hop_pct),
        ]);
        rows.push(vec![
            c.policy.clone(),
            c.scenario.clone(),
            c.transfers.to_string(),
            format!("{:.3}", c.mean_improvement_pct),
            format!("{:.3}", c.indirect_pct),
            format!("{:.3}", c.penalty_rate_pct),
            format!("{:.4}", c.probe_paths_per_transfer),
            format!("{:.3}", c.multi_hop_pct),
        ]);
    }

    let cell = |p: &str, s: &str| {
        cells
            .iter()
            .find(|c| c.policy == p && c.scenario == s)
            .cloned()
    };
    // The headline claim: on the ridge, only a chain-capable selector
    // reaches the fat route, and it pays off.
    let ks_ridge = cell("k-shortest", "ridge");
    let ks_multi = ks_ridge.as_ref().map(|c| c.multi_hop_pct).unwrap_or(0.0);
    let ks_imp = ks_ridge
        .as_ref()
        .map(|c| c.mean_improvement_pct)
        .unwrap_or(f64::NAN);
    let best_one_hop_imp = cells
        .iter()
        .filter(|c| c.scenario == "ridge" && c.policy != "k-shortest")
        .map(|c| c.mean_improvement_pct)
        .filter(|v| v.is_finite())
        .fold(f64::NEG_INFINITY, f64::max);
    let max_probe = cells
        .iter()
        .map(|c| c.probe_paths_per_transfer)
        .fold(0.0f64, f64::max);

    let mut body = table.render();
    body.push_str(&format!(
        "\nk-shortest on ridge: {ks_multi:.0}% of transfers settled on a 2+-hop chain \
         ({ks_imp:.0}% mean improvement vs {best_one_hop_imp:.0}% for the best 1-hop policy)\n"
    ));

    Report {
        id: "tournament",
        title: "Path-selection policy tournament".into(),
        body,
        csv: vec![(
            "cells".into(),
            csv(
                &[
                    "policy",
                    "scenario",
                    "transfers",
                    "mean_improvement_pct",
                    "indirect_pct",
                    "penalty_rate_pct",
                    "probe_paths_per_transfer",
                    "multi_hop_pct",
                ],
                &rows,
            ),
        )],
        checks: vec![
            Check::banded(
                "k-shortest 2+-hop share on ridge (%)",
                100.0,
                ks_multi,
                50.0,
                100.0,
            ),
            Check::banded(
                "k-shortest ridge improvement vs best 1-hop policy (%)",
                ks_imp,
                ks_imp - best_one_hop_imp,
                1.0,
                f64::INFINITY,
            ),
            Check::banded(
                "probe overhead ceiling (indirect paths/transfer)",
                TOURNAMENT_K as f64,
                max_probe,
                0.1,
                TOURNAMENT_K as f64 + 0.5,
            ),
            Check::info(
                "tournament cells (policies × scenarios)",
                (POLICIES.len() * SCENARIOS.len()) as f64,
                cells.len() as f64,
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(c: &TournamentCell) -> Vec<u64> {
        vec![
            c.mean_improvement_pct.to_bits(),
            c.indirect_pct.to_bits(),
            c.penalty_rate_pct.to_bits(),
            c.probe_paths_per_transfer.to_bits(),
            c.multi_hop_pct.to_bits(),
        ]
    }

    #[test]
    fn tournament_is_deterministic() {
        let a = run(2007, Scale::Quick);
        let b = run(2007, Scale::Quick);
        assert_eq!(a.len(), POLICIES.len() * SCENARIOS.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.policy, y.policy);
            assert_eq!(x.scenario, y.scenario);
            assert_eq!(x.transfers, y.transfers);
            assert_eq!(
                bits(x),
                bits(y),
                "cell {}/{} diverged",
                x.policy,
                x.scenario
            );
        }
    }

    /// The acceptance scenario: on the ridge a 2-hop chain beats every
    /// 1-hop path, and only the chain-capable selector finds it.
    #[test]
    fn ridge_two_hop_chain_beats_all_one_hop_policies() {
        let cells = run(2007, Scale::Quick);
        let ridge: Vec<&TournamentCell> = cells.iter().filter(|c| c.scenario == "ridge").collect();
        let ks = ridge
            .iter()
            .find(|c| c.policy == "k-shortest")
            .expect("k-shortest ridge cell");
        // The fat route is 2-hop; k-shortest must settle on it in at
        // least half its transfers and beat every 1-hop-only policy.
        assert!(
            ks.multi_hop_pct >= 50.0,
            "k-shortest rarely took the chain: {ks:?}"
        );
        for c in ridge.iter().filter(|c| c.policy != "k-shortest") {
            assert_eq!(c.multi_hop_pct, 0.0, "1-hop policy took a chain: {c:?}");
            assert!(
                ks.mean_improvement_pct > c.mean_improvement_pct,
                "k-shortest ({:.1}%) did not beat {} ({:.1}%)",
                ks.mean_improvement_pct,
                c.policy,
                c.mean_improvement_pct
            );
        }
    }

    #[test]
    fn per_policy_runs_compose_into_the_full_run() {
        let full = run(2007, Scale::Quick);
        for &p in POLICIES {
            let solo = run_policy(2007, Scale::Quick, p);
            let from_full: Vec<&TournamentCell> = full.iter().filter(|c| c.policy == p).collect();
            assert_eq!(solo.len(), from_full.len());
            for (s, f) in solo.iter().zip(from_full) {
                assert_eq!(s.scenario, f.scenario);
                assert_eq!(bits(s), bits(f), "{p}/{} differs solo vs full", s.scenario);
            }
        }
    }

    #[test]
    fn probe_overhead_counters_populate_cells() {
        let cells = run_policy(2007, Scale::Quick, "random-set");
        for c in &cells {
            assert!(
                c.probe_paths_per_transfer > 0.0
                    && c.probe_paths_per_transfer <= TOURNAMENT_K as f64,
                "probe overhead out of range: {c:?}"
            );
        }
    }

    #[test]
    fn report_has_cells_csv_and_checks() {
        let r = report(2007, Scale::Quick);
        assert_eq!(r.id, "tournament");
        assert_eq!(r.csv.len(), 1);
        let lines = r.csv[0].1.lines().count();
        assert_eq!(lines, 1 + POLICIES.len() * SCENARIOS.len());
        assert!(r.checks.len() >= 3);
    }
}
