//! Cache codecs for study outputs.
//!
//! Each study result gets a total, versioned byte encoding built on
//! [`ir_artifact::ByteWriter`]/[`ir_artifact::ByteReader`]. Decoders
//! return `None` on any malformation — the sweep scheduler treats that
//! exactly like a corrupt cache entry and recomputes. The layout
//! version is part of every study fingerprint (see
//! [`crate::sweep::CODEC_VERSION`]), so changing an encoding
//! automatically retires incompatible cache entries instead of
//! misreading them.

use crate::faults::FaultCell;
use crate::headroom::Headroom;
use crate::megaflow::{MegaflowConfig, MegaflowResult};
use crate::runner::{MeasurementData, PairRun, SelectionData, SelectionRun};
use crate::sites::SiteResult;
use crate::soak::{SoakConfig, SoakResult};
use crate::striping::StripeCell;
use crate::tournament::TournamentCell;
use ir_artifact::{ByteReader, ByteWriter};
use ir_core::{PathSpec, TransferRecord};
use ir_simnet::time::SimTime;
use ir_simnet::topology::NodeId;
use ir_workload::{Category, ClientProfile, Variability};
use std::collections::BTreeMap;

fn put_node(w: &mut ByteWriter, id: NodeId) {
    w.put_u32(id.0);
}

fn get_node(r: &mut ByteReader<'_>) -> Option<NodeId> {
    r.get_u32().map(NodeId)
}

fn put_nodes(w: &mut ByteWriter, ids: &[NodeId]) {
    w.put_u64(ids.len() as u64);
    for &id in ids {
        put_node(w, id);
    }
}

fn get_nodes(r: &mut ByteReader<'_>) -> Option<Vec<NodeId>> {
    let n = r.get_len()?;
    (0..n).map(|_| get_node(r)).collect()
}

fn put_path(w: &mut ByteWriter, p: &PathSpec) {
    put_node(w, p.client);
    put_node(w, p.server);
    // Hop-chain layout (codec v2): count then the hops in traversal
    // order. A 1-hop chain is byte-for-byte the old `via` encoding.
    w.put_u8(p.hop_count() as u8);
    for &hop in p.hops() {
        put_node(w, hop);
    }
}

fn get_path(r: &mut ByteReader<'_>) -> Option<PathSpec> {
    let client = get_node(r)?;
    let server = get_node(r)?;
    let n = r.get_u8()? as usize;
    if n > ir_core::MAX_HOPS {
        return None;
    }
    let hops: Vec<NodeId> = (0..n).map(|_| get_node(r)).collect::<Option<_>>()?;
    // Reject degenerate chains instead of panicking in `chain`.
    if hops.iter().any(|&h| h == client || h == server) {
        return None;
    }
    if (1..hops.len()).any(|i| hops[..i].contains(&hops[i])) {
        return None;
    }
    Some(PathSpec::chain(client, server, &hops))
}

fn put_record(w: &mut ByteWriter, rec: &TransferRecord) {
    let TransferRecord {
        client,
        server,
        started,
        file_bytes,
        ref selected,
        ref candidates,
        direct_throughput,
        selected_throughput,
        probe_throughput,
        selected_path_rate,
        probe_timeout,
        failovers,
        stall_ms,
        abandoned,
    } = *rec;
    put_node(w, client);
    put_node(w, server);
    w.put_u64(started.0);
    w.put_u64(file_bytes);
    put_path(w, selected);
    put_nodes(w, candidates);
    w.put_f64(direct_throughput);
    w.put_f64(selected_throughput);
    w.put_f64(probe_throughput);
    w.put_f64(selected_path_rate);
    w.put_bool(probe_timeout);
    w.put_u32(failovers);
    w.put_u64(stall_ms);
    w.put_bool(abandoned);
}

fn get_record(r: &mut ByteReader<'_>) -> Option<TransferRecord> {
    Some(TransferRecord {
        client: get_node(r)?,
        server: get_node(r)?,
        started: SimTime(r.get_u64()?),
        file_bytes: r.get_u64()?,
        selected: get_path(r)?,
        candidates: get_nodes(r)?,
        direct_throughput: r.get_f64()?,
        selected_throughput: r.get_f64()?,
        probe_throughput: r.get_f64()?,
        selected_path_rate: r.get_f64()?,
        probe_timeout: r.get_bool()?,
        failovers: r.get_u32()?,
        stall_ms: r.get_u64()?,
        abandoned: r.get_bool()?,
    })
}

fn put_records(w: &mut ByteWriter, records: &[TransferRecord]) {
    w.put_u64(records.len() as u64);
    for rec in records {
        put_record(w, rec);
    }
}

fn get_records(r: &mut ByteReader<'_>) -> Option<Vec<TransferRecord>> {
    let n = r.get_len()?;
    (0..n).map(|_| get_record(r)).collect()
}

fn put_names(w: &mut ByteWriter, names: &BTreeMap<NodeId, String>) {
    w.put_u64(names.len() as u64);
    for (&id, name) in names {
        put_node(w, id);
        w.put_str(name);
    }
}

fn get_names(r: &mut ByteReader<'_>) -> Option<BTreeMap<NodeId, String>> {
    let n = r.get_len()?;
    (0..n).map(|_| Some((get_node(r)?, r.get_str()?))).collect()
}

fn put_profile(w: &mut ByteWriter, p: &ClientProfile) {
    w.put_u8(match p.category {
        Category::Low => 0,
        Category::Medium => 1,
        Category::High => 2,
    });
    w.put_u8(match p.variability {
        Variability::Stable => 0,
        Variability::Variable => 1,
    });
    w.put_f64(p.base_rate);
}

fn get_profile(r: &mut ByteReader<'_>) -> Option<ClientProfile> {
    let category = match r.get_u8()? {
        0 => Category::Low,
        1 => Category::Medium,
        2 => Category::High,
        _ => return None,
    };
    let variability = match r.get_u8()? {
        0 => Variability::Stable,
        1 => Variability::Variable,
        _ => return None,
    };
    Some(ClientProfile {
        category,
        variability,
        base_rate: r.get_f64()?,
    })
}

/// Encodes a [`MeasurementData`] for the study cache.
pub fn encode_measurement(d: &MeasurementData) -> Vec<u8> {
    let mut w = ByteWriter::new();
    put_names(&mut w, &d.names);
    w.put_u64(d.profiles.len() as u64);
    for (&id, p) in &d.profiles {
        put_node(&mut w, id);
        put_profile(&mut w, p);
    }
    put_nodes(&mut w, &d.clients);
    put_nodes(&mut w, &d.relays);
    put_node(&mut w, d.server);
    w.put_u64(d.pairs.len() as u64);
    for pair in &d.pairs {
        put_node(&mut w, pair.client);
        put_node(&mut w, pair.via);
        put_node(&mut w, pair.server);
        put_records(&mut w, &pair.records);
    }
    w.into_bytes()
}

/// Decodes a [`MeasurementData`]; `None` on any malformation.
pub fn decode_measurement(bytes: &[u8]) -> Option<MeasurementData> {
    let mut r = ByteReader::new(bytes);
    let names = get_names(&mut r)?;
    let n = r.get_len()?;
    let profiles: BTreeMap<NodeId, ClientProfile> = (0..n)
        .map(|_| Some((get_node(&mut r)?, get_profile(&mut r)?)))
        .collect::<Option<_>>()?;
    let clients = get_nodes(&mut r)?;
    let relays = get_nodes(&mut r)?;
    let server = get_node(&mut r)?;
    let n = r.get_len()?;
    let pairs: Vec<PairRun> = (0..n)
        .map(|_| {
            Some(PairRun {
                client: get_node(&mut r)?,
                via: get_node(&mut r)?,
                server: get_node(&mut r)?,
                records: get_records(&mut r)?,
            })
        })
        .collect::<Option<_>>()?;
    if !r.is_exhausted() {
        return None;
    }
    Some(MeasurementData {
        names,
        profiles,
        clients,
        relays,
        server,
        pairs,
    })
}

/// Encodes a [`SelectionData`] for the study cache.
pub fn encode_selection(d: &SelectionData) -> Vec<u8> {
    let mut w = ByteWriter::new();
    put_names(&mut w, &d.names);
    put_nodes(&mut w, &d.clients);
    put_nodes(&mut w, &d.relays);
    w.put_u64(d.runs.len() as u64);
    for run in &d.runs {
        put_node(&mut w, run.client);
        w.put_u64(run.k as u64);
        put_records(&mut w, &run.records);
    }
    w.into_bytes()
}

/// Decodes a [`SelectionData`]; `None` on any malformation.
pub fn decode_selection(bytes: &[u8]) -> Option<SelectionData> {
    let mut r = ByteReader::new(bytes);
    let names = get_names(&mut r)?;
    let clients = get_nodes(&mut r)?;
    let relays = get_nodes(&mut r)?;
    let n = r.get_len()?;
    let runs: Vec<SelectionRun> = (0..n)
        .map(|_| {
            Some(SelectionRun {
                client: get_node(&mut r)?,
                k: r.get_u64()? as usize,
                records: get_records(&mut r)?,
            })
        })
        .collect::<Option<_>>()?;
    if !r.is_exhausted() {
        return None;
    }
    Some(SelectionData {
        names,
        clients,
        relays,
        runs,
    })
}

/// Encodes the per-site study results for the cache.
pub fn encode_sites(results: &[SiteResult]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(results.len() as u64);
    for s in results {
        w.put_str(&s.site);
        w.put_f64(s.mean_improvement_pct);
        w.put_f64(s.chose_indirect_pct);
        w.put_u64(s.n as u64);
    }
    w.into_bytes()
}

/// Decodes the per-site study results; `None` on any malformation.
pub fn decode_sites(bytes: &[u8]) -> Option<Vec<SiteResult>> {
    let mut r = ByteReader::new(bytes);
    let n = r.get_len()?;
    let out: Vec<SiteResult> = (0..n)
        .map(|_| {
            Some(SiteResult {
                site: r.get_str()?,
                mean_improvement_pct: r.get_f64()?,
                chose_indirect_pct: r.get_f64()?,
                n: r.get_u64()? as usize,
            })
        })
        .collect::<Option<_>>()?;
    if !r.is_exhausted() {
        return None;
    }
    Some(out)
}

/// Encodes the headroom study results for the cache.
pub fn encode_headroom(results: &[Headroom]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(results.len() as u64);
    for h in results {
        w.put_str(&h.client);
        w.put_f64(h.oracle_pct);
        w.put_f64(h.random10_pct);
        w.put_f64(h.static_pct);
    }
    w.into_bytes()
}

/// Decodes the headroom study results; `None` on any malformation.
pub fn decode_headroom(bytes: &[u8]) -> Option<Vec<Headroom>> {
    let mut r = ByteReader::new(bytes);
    let n = r.get_len()?;
    let out: Vec<Headroom> = (0..n)
        .map(|_| {
            Some(Headroom {
                client: r.get_str()?,
                oracle_pct: r.get_f64()?,
                random10_pct: r.get_f64()?,
                static_pct: r.get_f64()?,
            })
        })
        .collect::<Option<_>>()?;
    if !r.is_exhausted() {
        return None;
    }
    Some(out)
}

/// Encodes the fault-sweep cells for the cache.
pub fn encode_faults(cells: &[FaultCell]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(cells.len() as u64);
    for c in cells {
        let FaultCell {
            mtbf_secs,
            k,
            transfers,
            availability_pct,
            mean_failovers,
            mean_stall_ms,
            goodput,
            goodput_ratio,
            mean_improvement_pct,
        } = *c;
        w.put_u64(mtbf_secs);
        w.put_u64(k as u64);
        w.put_u64(transfers as u64);
        w.put_f64(availability_pct);
        w.put_f64(mean_failovers);
        w.put_f64(mean_stall_ms);
        w.put_f64(goodput);
        w.put_f64(goodput_ratio);
        w.put_f64(mean_improvement_pct);
    }
    w.into_bytes()
}

/// Decodes the fault-sweep cells; `None` on any malformation.
pub fn decode_faults(bytes: &[u8]) -> Option<Vec<FaultCell>> {
    let mut r = ByteReader::new(bytes);
    let n = r.get_len()?;
    let out: Vec<FaultCell> = (0..n)
        .map(|_| {
            Some(FaultCell {
                mtbf_secs: r.get_u64()?,
                k: r.get_u64()? as usize,
                transfers: r.get_u64()? as usize,
                availability_pct: r.get_f64()?,
                mean_failovers: r.get_f64()?,
                mean_stall_ms: r.get_f64()?,
                goodput: r.get_f64()?,
                goodput_ratio: r.get_f64()?,
                mean_improvement_pct: r.get_f64()?,
            })
        })
        .collect::<Option<_>>()?;
    if !r.is_exhausted() {
        return None;
    }
    Some(out)
}

/// Encodes the striping-sweep cells for the cache.
pub fn encode_striping(cells: &[StripeCell]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(cells.len() as u64);
    for c in cells {
        let StripeCell {
            scenario,
            k,
            chunks,
            stale,
            raced_secs,
            striped_secs,
            ratio,
            reassignments,
            deaths,
            direct_chunks,
            overlay_chunks,
        } = c;
        w.put_str(scenario);
        w.put_u32(*k);
        w.put_u32(*chunks);
        w.put_bool(*stale);
        w.put_f64(*raced_secs);
        w.put_f64(*striped_secs);
        w.put_f64(*ratio);
        w.put_u32(*reassignments);
        w.put_u32(*deaths);
        w.put_u64(*direct_chunks);
        w.put_u64(*overlay_chunks);
    }
    w.into_bytes()
}

/// Decodes the striping-sweep cells; `None` on any malformation.
pub fn decode_striping(bytes: &[u8]) -> Option<Vec<StripeCell>> {
    let mut r = ByteReader::new(bytes);
    let n = r.get_len()?;
    let out: Vec<StripeCell> = (0..n)
        .map(|_| {
            Some(StripeCell {
                scenario: r.get_str()?,
                k: r.get_u32()?,
                chunks: r.get_u32()?,
                stale: r.get_bool()?,
                raced_secs: r.get_f64()?,
                striped_secs: r.get_f64()?,
                ratio: r.get_f64()?,
                reassignments: r.get_u32()?,
                deaths: r.get_u32()?,
                direct_chunks: r.get_u64()?,
                overlay_chunks: r.get_u64()?,
            })
        })
        .collect::<Option<_>>()?;
    if !r.is_exhausted() {
        return None;
    }
    Some(out)
}

/// Encodes one policy's tournament cells.
pub fn encode_tournament(cells: &[TournamentCell]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(cells.len() as u64);
    for c in cells {
        let TournamentCell {
            policy,
            scenario,
            transfers,
            mean_improvement_pct,
            indirect_pct,
            penalty_rate_pct,
            probe_paths_per_transfer,
            multi_hop_pct,
        } = c;
        w.put_str(policy);
        w.put_str(scenario);
        w.put_u64(*transfers as u64);
        w.put_f64(*mean_improvement_pct);
        w.put_f64(*indirect_pct);
        w.put_f64(*penalty_rate_pct);
        w.put_f64(*probe_paths_per_transfer);
        w.put_f64(*multi_hop_pct);
    }
    w.into_bytes()
}

/// Decodes tournament cells; `None` on any malformation.
pub fn decode_tournament(bytes: &[u8]) -> Option<Vec<TournamentCell>> {
    let mut r = ByteReader::new(bytes);
    let n = r.get_len()?;
    let out: Vec<TournamentCell> = (0..n)
        .map(|_| {
            Some(TournamentCell {
                policy: r.get_str()?,
                scenario: r.get_str()?,
                transfers: r.get_u64()? as usize,
                mean_improvement_pct: r.get_f64()?,
                indirect_pct: r.get_f64()?,
                penalty_rate_pct: r.get_f64()?,
                probe_paths_per_transfer: r.get_f64()?,
                multi_hop_pct: r.get_f64()?,
            })
        })
        .collect::<Option<_>>()?;
    if !r.is_exhausted() {
        return None;
    }
    Some(out)
}

/// Encodes a megaflow result for the cache.
pub fn encode_megaflow(r: &MegaflowResult) -> Vec<u8> {
    let MegaflowResult {
        cfg,
        nodes,
        flows_started,
        flows_completed,
        boundaries,
        full_solves,
        incremental_solves,
        component_solves,
        completion_batches,
        makespan_us,
    } = *r;
    let mut w = ByteWriter::new();
    w.put_u32(cfg.racks);
    w.put_u32(cfg.hosts_per_rack);
    w.put_u32(cfg.flows_per_host);
    w.put_u32(cfg.waves);
    w.put_u64(cfg.wave_stagger_ms);
    w.put_u64(cfg.file_bytes);
    w.put_u64(cfg.host_rate);
    w.put_u64(cfg.rack_base_rate);
    w.put_u64(nodes);
    w.put_u64(flows_started);
    w.put_u64(flows_completed);
    w.put_u64(boundaries);
    w.put_u64(full_solves);
    w.put_u64(incremental_solves);
    w.put_u64(component_solves);
    w.put_u64(completion_batches);
    w.put_u64(makespan_us);
    w.into_bytes()
}

/// Decodes a megaflow result; `None` on any malformation.
pub fn decode_megaflow(bytes: &[u8]) -> Option<MegaflowResult> {
    let mut r = ByteReader::new(bytes);
    let out = MegaflowResult {
        cfg: MegaflowConfig {
            racks: r.get_u32()?,
            hosts_per_rack: r.get_u32()?,
            flows_per_host: r.get_u32()?,
            waves: r.get_u32()?,
            wave_stagger_ms: r.get_u64()?,
            file_bytes: r.get_u64()?,
            host_rate: r.get_u64()?,
            rack_base_rate: r.get_u64()?,
        },
        nodes: r.get_u64()?,
        flows_started: r.get_u64()?,
        flows_completed: r.get_u64()?,
        boundaries: r.get_u64()?,
        full_solves: r.get_u64()?,
        incremental_solves: r.get_u64()?,
        component_solves: r.get_u64()?,
        completion_batches: r.get_u64()?,
        makespan_us: r.get_u64()?,
    };
    if !r.is_exhausted() {
        return None;
    }
    Some(out)
}

/// Encodes a soak result (see [`crate::soak`]).
pub fn encode_soak(r: &SoakResult) -> Vec<u8> {
    let SoakResult {
        cfg,
        event_mode,
        completed,
        lost,
        accepted,
        backpressure_drops,
        p50_first_byte_us,
        p99_first_byte_us,
        max_first_byte_us,
        goodput_bps,
        wall_ms,
        drain_completed,
        drain_monotone,
    } = *r;
    let mut w = ByteWriter::new();
    w.put_u32(cfg.clients);
    w.put_u64(cfg.file_bytes);
    w.put_u64(cfg.probe_bytes);
    w.put_u64(cfg.direct_rate);
    w.put_u64(cfg.relay_rate);
    w.put_u32(cfg.workers);
    w.put_u64(cfg.stagger_ms);
    w.put_bool(event_mode);
    w.put_u64(completed);
    w.put_u64(lost);
    w.put_u64(accepted);
    w.put_u64(backpressure_drops);
    w.put_u64(p50_first_byte_us);
    w.put_u64(p99_first_byte_us);
    w.put_u64(max_first_byte_us);
    w.put_u64(goodput_bps);
    w.put_u64(wall_ms);
    w.put_bool(drain_completed);
    w.put_bool(drain_monotone);
    w.into_bytes()
}

/// Decodes a soak result; `None` on any malformation.
pub fn decode_soak(bytes: &[u8]) -> Option<SoakResult> {
    let mut r = ByteReader::new(bytes);
    let out = SoakResult {
        cfg: SoakConfig {
            clients: r.get_u32()?,
            file_bytes: r.get_u64()?,
            probe_bytes: r.get_u64()?,
            direct_rate: r.get_u64()?,
            relay_rate: r.get_u64()?,
            workers: r.get_u32()?,
            stagger_ms: r.get_u64()?,
        },
        event_mode: r.get_bool()?,
        completed: r.get_u64()?,
        lost: r.get_u64()?,
        accepted: r.get_u64()?,
        backpressure_drops: r.get_u64()?,
        p50_first_byte_us: r.get_u64()?,
        p99_first_byte_us: r.get_u64()?,
        max_first_byte_us: r.get_u64()?,
        goodput_bps: r.get_u64()?,
        wall_ms: r.get_u64()?,
        drain_completed: r.get_bool()?,
        drain_monotone: r.get_bool()?,
    };
    if !r.is_exhausted() {
        return None;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_measurement_study, run_selection_study};
    use ir_core::SessionConfig;
    use ir_workload::Schedule;

    fn tiny_scenario() -> ir_workload::Scenario {
        ir_workload::build(
            9,
            &ir_workload::roster::CLIENTS[..2],
            &ir_workload::roster::INTERMEDIATES[..2],
            &ir_workload::roster::SERVERS[..1],
            ir_workload::Calibration::default(),
            false,
        )
    }

    #[test]
    fn measurement_round_trips_bit_exactly() {
        let sc = tiny_scenario();
        let data = run_measurement_study(
            &sc,
            0,
            Schedule::measurement_study().truncated(3),
            SessionConfig::paper_defaults(),
        );
        let bytes = encode_measurement(&data);
        let back = decode_measurement(&bytes).expect("round trip");
        assert_eq!(back.names, data.names);
        assert_eq!(back.profiles, data.profiles);
        assert_eq!(back.clients, data.clients);
        assert_eq!(back.relays, data.relays);
        assert_eq!(back.server, data.server);
        assert_eq!(back.pairs.len(), data.pairs.len());
        for (a, b) in back.pairs.iter().zip(data.pairs.iter()) {
            assert_eq!(a.client, b.client);
            assert_eq!(a.via, b.via);
            assert_eq!(a.records, b.records);
        }
        // And the rendered artefacts agree byte for byte.
        let fig1_a = crate::fig1::report(&data);
        let fig1_b = crate::fig1::report(&back);
        assert_eq!(fig1_a.render(), fig1_b.render());
        assert_eq!(fig1_a.csv, fig1_b.csv);
        // Truncation is detected, not misread.
        assert!(decode_measurement(&bytes[..bytes.len() - 1]).is_none());
        assert!(decode_measurement(&[]).is_none());
    }

    #[test]
    fn selection_round_trips_bit_exactly() {
        let sc = tiny_scenario();
        let data = run_selection_study(
            &sc,
            &[1, 2],
            Schedule::selection_study().truncated(3),
            SessionConfig::paper_defaults(),
            7,
        );
        let bytes = encode_selection(&data);
        let back = decode_selection(&bytes).expect("round trip");
        assert_eq!(back.names, data.names);
        assert_eq!(back.clients, data.clients);
        assert_eq!(back.relays, data.relays);
        assert_eq!(back.runs.len(), data.runs.len());
        for (a, b) in back.runs.iter().zip(data.runs.iter()) {
            assert_eq!(a.client, b.client);
            assert_eq!(a.k, b.k);
            assert_eq!(a.records, b.records);
        }
        assert!(decode_selection(&bytes[..bytes.len() - 2]).is_none());
    }

    #[test]
    fn scalar_tables_round_trip_with_nan() {
        let sites = vec![SiteResult {
            site: "eBay".into(),
            mean_improvement_pct: 42.5,
            chose_indirect_pct: f64::NAN,
            n: 9,
        }];
        let back = decode_sites(&encode_sites(&sites)).unwrap();
        assert_eq!(back[0].site, "eBay");
        assert!(back[0].chose_indirect_pct.is_nan());
        assert_eq!(back[0].n, 9);

        let hr = vec![Headroom {
            client: "Duke".into(),
            oracle_pct: 88.0,
            random10_pct: 70.0,
            static_pct: 30.0,
        }];
        let back = decode_headroom(&encode_headroom(&hr)).unwrap();
        assert_eq!(back[0].client, "Duke");
        assert_eq!(back[0].oracle_pct.to_bits(), 88.0f64.to_bits());

        let cells = vec![FaultCell {
            mtbf_secs: 900,
            k: 3,
            transfers: 36,
            availability_pct: 97.2,
            mean_failovers: 0.11,
            mean_stall_ms: 812.0,
            goodput: 1.0e5,
            goodput_ratio: 0.93,
            mean_improvement_pct: f64::NAN,
        }];
        let bytes = encode_faults(&cells);
        let back = decode_faults(&bytes).unwrap();
        assert_eq!(back[0].mtbf_secs, 900);
        assert_eq!(back[0].goodput_ratio.to_bits(), 0.93f64.to_bits());
        assert!(back[0].mean_improvement_pct.is_nan());
        assert!(decode_faults(&bytes[..5]).is_none());
    }

    #[test]
    fn striping_cells_round_trip_with_nan() {
        let cells = vec![StripeCell {
            scenario: "stale-brownout".into(),
            k: 2,
            chunks: 8,
            stale: true,
            raced_secs: 112.9,
            striped_secs: 4.5,
            ratio: f64::NAN,
            reassignments: 2,
            deaths: 1,
            direct_chunks: 0,
            overlay_chunks: 8,
        }];
        let bytes = encode_striping(&cells);
        let back = decode_striping(&bytes).unwrap();
        assert_eq!(back[0].scenario, "stale-brownout");
        assert_eq!(back[0].k, 2);
        assert!(back[0].stale);
        assert_eq!(back[0].raced_secs.to_bits(), 112.9f64.to_bits());
        assert!(back[0].ratio.is_nan());
        assert_eq!(back[0].overlay_chunks, 8);
        assert!(decode_striping(&bytes[..5]).is_none());
        assert!(decode_striping(&bytes[..bytes.len() - 1]).is_none());
    }

    #[test]
    fn megaflow_round_trips_bit_exactly() {
        let r = MegaflowResult {
            cfg: MegaflowConfig::mini(),
            nodes: 41,
            flows_started: 160,
            flows_completed: 160,
            boundaries: 23,
            full_solves: 5,
            incremental_solves: 18,
            component_solves: 170,
            completion_batches: 16,
            makespan_us: 123_456_789,
        };
        let bytes = encode_megaflow(&r);
        let back = decode_megaflow(&bytes).expect("round trip");
        assert_eq!(back, r);
        assert!(decode_megaflow(&bytes[..bytes.len() - 1]).is_none());
        assert!(decode_megaflow(&[]).is_none());
    }

    #[test]
    fn soak_round_trips_bit_exactly() {
        let r = SoakResult {
            cfg: SoakConfig::quick(),
            event_mode: true,
            completed: 250,
            lost: 0,
            accepted: 251,
            backpressure_drops: 0,
            p50_first_byte_us: 850,
            p99_first_byte_us: 14_200,
            max_first_byte_us: 22_407,
            goodput_bps: 1_935_483,
            wall_ms: 1_550,
            drain_completed: true,
            drain_monotone: true,
        };
        let bytes = encode_soak(&r);
        let back = decode_soak(&bytes).expect("round trip");
        assert_eq!(back, r);
        assert!(decode_soak(&bytes[..bytes.len() - 1]).is_none());
        assert!(decode_soak(&[]).is_none());
    }
}
