//! Fig 3 — improvement vs client direct-path throughput.
//!
//! The paper's claim: "throughput performance improvement decreases as
//! client throughput on the direct path increases", i.e. the scatter of
//! (direct throughput, improvement) slopes downward. We verify with
//! Pearson correlation, an OLS fit, and the robust Theil–Sen slope over
//! the same per-(client, top-3 relay) populations the paper plots.

use crate::report::{csv, Check, Report};
use crate::runner::MeasurementData;
use ir_stats::{ols, pearson, theil_sen};
use ir_workload::MBPS;

/// The scatter: (direct throughput in Mbps, improvement %) over
/// indirect-chosen transfers through each client's top-3 relays.
pub fn scatter(data: &MeasurementData) -> Vec<(f64, f64)> {
    let util = data.utilization();
    let mut pts = Vec::new();
    for &client in &data.clients {
        let top: Vec<_> = util
            .top_for_client(client)
            .into_iter()
            .take(3)
            .map(|(v, _)| v)
            .collect();
        for r in data.all_records() {
            if r.client != client || !r.chose_indirect() {
                continue;
            }
            let Some(via) = r.selected.via() else {
                continue;
            };
            if !top.contains(&via) {
                continue;
            }
            let imp = r.improvement_pct();
            if imp.is_finite() && r.direct_throughput > 0.0 {
                pts.push((r.direct_throughput / MBPS, imp));
            }
        }
    }
    pts
}

/// Builds the Fig 3 report.
pub fn report(data: &MeasurementData) -> Report {
    let pts = scatter(data);
    assert!(pts.len() >= 8, "too few scatter points ({})", pts.len());
    let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();

    let r = pearson(&xs, &ys);
    let fit = ols(&xs, &ys).expect("non-degenerate scatter");
    let ts = theil_sen(&xs, &ys).expect("non-degenerate scatter");

    let mut body = String::new();
    body.push_str(&format!(
        "scatter: {n} points (indirect-chosen transfers via each client's top-3 relays)\n\
         Pearson r:        {r:+.3}\n\
         OLS slope:        {slope:+.1} %/Mbps (r² = {r2:.3})\n\
         Theil–Sen slope:  {ts:+.1} %/Mbps\n\n",
        n = pts.len(),
        slope = fit.slope,
        r2 = fit.r2
    ));

    // Binned means make the trend visible in text.
    let mut table = ir_stats::TextTable::new()
        .title("mean improvement by direct-throughput band")
        .header(["band (Mbps)", "n", "mean improvement (%)"]);
    let bands = [(0.0, 0.75), (0.75, 1.5), (1.5, 3.0), (3.0, f64::INFINITY)];
    let mut band_means: Vec<f64> = Vec::new();
    for (lo, hi) in bands {
        let vals: Vec<f64> = pts
            .iter()
            .filter(|(x, _)| *x >= lo && *x < hi)
            .map(|(_, y)| *y)
            .collect();
        let mean = ir_stats::Summary::of(&vals).map(|s| s.mean);
        table.row([
            if hi.is_finite() {
                format!("{lo:.2}-{hi:.2}")
            } else {
                format!(">= {lo:.2}")
            },
            vals.len().to_string(),
            mean.map(|m| format!("{m:+.1}"))
                .unwrap_or_else(|| "-".into()),
        ]);
        if let Some(m) = mean {
            band_means.push(m);
        }
    }
    body.push_str(&table.render());

    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|(x, y)| vec![format!("{x:.4}"), format!("{y:.2}")])
        .collect();

    // Shape check: the first band with data outperforms the last.
    let band_drop = match (band_means.first(), band_means.last()) {
        (Some(a), Some(b)) if band_means.len() >= 2 => a - b,
        _ => 0.0,
    };

    Report {
        id: "fig3",
        title: "Fig 3: improvement vs client direct-path throughput".into(),
        body,
        csv: vec![(
            "scatter".into(),
            csv(&["direct_mbps", "improvement_pct"], &rows),
        )],
        checks: vec![
            Check::banded("Pearson correlation", -0.5, r, -1.0, -0.05),
            Check::banded("Theil-Sen slope (%/Mbps)", -20.0, ts, -1e6, -0.1),
            Check::banded(
                "low-band minus high-band mean improvement (%)",
                40.0,
                band_drop,
                5.0,
                1e6,
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_measurement_study;
    use ir_core::SessionConfig;
    use ir_workload::Schedule;

    #[test]
    fn fig3_scatter_has_points_and_renders() {
        let sc = ir_workload::build(
            29,
            &ir_workload::roster::CLIENTS[..6],
            &ir_workload::roster::INTERMEDIATES[..5],
            &ir_workload::roster::SERVERS[..1],
            ir_workload::Calibration::default(),
            false,
        );
        let data = run_measurement_study(
            &sc,
            0,
            Schedule::measurement_study().truncated(10),
            SessionConfig::paper_defaults(),
        );
        let pts = scatter(&data);
        assert!(!pts.is_empty());
        let r = report(&data);
        assert!(r.render().contains("Pearson"));
    }
}
