//! Fig 1 — histogram of throughput improvements aggregated over all
//! clients.
//!
//! Paper values (eBay data set): average improvement 49%, median 37%,
//! 84% of points in [0, 100], ~12% below 0. The population is the
//! transfers where the indirect path was chosen (§6 clarifies the
//! 88%/12% positive/negative split is "of the times traffic was routed
//! through the indirect path").

use crate::report::{csv, Check, Report};
use crate::runner::MeasurementData;
use ir_stats::{mean_ci95, median_ci95, Ecdf, Histogram, Summary};

/// Builds the Fig 1 report from measurement-study data.
pub fn report(data: &MeasurementData) -> Report {
    let imps = data.indirect_improvements_pct();
    assert!(
        !imps.is_empty(),
        "no indirect-path transfers; scenario badly calibrated"
    );
    let summary = Summary::of(&imps).expect("non-empty");
    let ecdf = Ecdf::new(&imps);
    let frac_neg = ecdf.below(0.0) * 100.0;
    let frac_0_100 = ecdf.mass_in(0.0, 100.0) * 100.0;

    let hist = Histogram::of(-100.0, 200.0, 30, &imps);

    let mean_ci = mean_ci95(&imps, 0xF161);
    let median_ci = median_ci95(&imps, 0xF161);
    let mut body = String::new();
    body.push_str(&format!(
        "population: {} transfers where the indirect path was chosen\n\
         mean improvement:   {:+.1}%  (95% CI [{:+.1}, {:+.1}])\n\
         median improvement: {:+.1}%  (95% CI [{:+.1}, {:+.1}])\n\
         in [0, 100]:        {:.1}%\n\
         below 0 (penalty):  {:.1}%\n\n",
        summary.count,
        summary.mean,
        mean_ci.lo,
        mean_ci.hi,
        summary.median,
        median_ci.lo,
        median_ci.hi,
        frac_0_100,
        frac_neg
    ));
    body.push_str("histogram (% improvement, 10%-wide bins):\n");
    body.push_str(&hist.render_ascii(48));

    let rows: Vec<Vec<String>> = hist
        .series()
        .into_iter()
        .map(|(center, count)| vec![format!("{center}"), format!("{count}")])
        .collect();

    Report {
        id: "fig1",
        title: "Fig 1: throughput improvement histogram (all clients)".into(),
        body,
        csv: vec![("histogram".into(), csv(&["bin_center_pct", "count"], &rows))],
        checks: vec![
            Check::banded("mean improvement (%)", 49.0, summary.mean, 25.0, 85.0),
            Check::banded("median improvement (%)", 37.0, summary.median, 15.0, 70.0),
            Check::banded("mass in [0,100] (%)", 84.0, frac_0_100, 65.0, 95.0),
            Check::banded("penalty fraction (%)", 12.0, frac_neg, 3.0, 25.0),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_measurement_study, Scale};
    use ir_core::SessionConfig;
    use ir_workload::Schedule;

    #[test]
    fn fig1_report_renders_on_small_study() {
        let sc = ir_workload::build(
            11,
            &ir_workload::roster::CLIENTS[..4],
            &ir_workload::roster::INTERMEDIATES[..5],
            &ir_workload::roster::SERVERS[..1],
            ir_workload::Calibration::default(),
            false,
        );
        let data = run_measurement_study(
            &sc,
            0,
            Schedule::measurement_study().truncated(6),
            SessionConfig::paper_defaults(),
        );
        let r = report(&data);
        assert_eq!(r.id, "fig1");
        assert!(r.render().contains("mean improvement"));
        assert_eq!(r.csv.len(), 1);
        let _ = Scale::Quick; // silence unused import when cfg-gated
    }
}
