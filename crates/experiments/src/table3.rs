//! Table III — per-relay utilization vs throughput improvement (Duke).
//!
//! §4.3: "For the most part, the nodes that provide the highest
//! throughput are the nodes that are selected the most … this
//! correlation is not perfect." We compute, for one client, each
//! relay's utilization (chosen / appeared-in-random-set) and the mean
//! improvement of the transfers it carried, then report the rank
//! correlation between the two columns.

use crate::report::{csv, Check, Report};
use crate::runner::SelectionData;
use ir_core::UtilizationTracker;
use ir_simnet::topology::NodeId;
use ir_stats::{spearman, Summary};

/// Per-relay row of Table III.
#[derive(Debug, Clone)]
pub struct Row {
    /// The relay.
    pub via: NodeId,
    /// Utilization percent (chosen / appeared in the random set).
    pub utilization_pct: f64,
    /// Mean improvement percent of transfers carried by this relay.
    pub improvement_pct: f64,
    /// Number of transfers carried.
    pub carried: u64,
}

/// Computes Table III rows for one client from the selection study,
/// pooling all k runs (the paper's table is from its multi-k testbed).
pub fn rows_for(data: &SelectionData, client: NodeId) -> Vec<Row> {
    let mut util = UtilizationTracker::new();
    let mut improvements: std::collections::BTreeMap<NodeId, Vec<f64>> = Default::default();
    for run in data.runs.iter().filter(|r| r.client == client) {
        for rec in &run.records {
            util.observe(rec);
            if let Some(via) = rec.selected.via() {
                let v = rec.improvement_pct();
                if v.is_finite() {
                    improvements.entry(via).or_default().push(v);
                }
            }
        }
    }
    let mut rows: Vec<Row> = util
        .relays()
        .into_iter()
        .filter_map(|via| {
            let u = util.utilization(client, via)?;
            let carried = util.chosen_count(client, via);
            if carried == 0 {
                return None; // the paper lists only non-zero utilizations
            }
            let imp = improvements
                .get(&via)
                .and_then(|v| Summary::of(v))
                .map(|s| s.mean)
                .unwrap_or(f64::NAN);
            Some(Row {
                via,
                utilization_pct: u * 100.0,
                improvement_pct: imp,
                carried,
            })
        })
        .collect();
    rows.sort_by(|a, b| b.utilization_pct.partial_cmp(&a.utilization_pct).unwrap());
    rows
}

/// Builds the Table III report for the study's first client (Duke in
/// the paper's roster).
pub fn report(data: &SelectionData) -> Report {
    let client = data.clients[0];
    let rows = rows_for(data, client);
    assert!(!rows.is_empty(), "no relay was ever chosen");

    let mut table = ir_stats::TextTable::new()
        .title(format!(
            "TABLE III: utilization vs improvement ({} as client)",
            data.name(client)
        ))
        .header(["node", "utilization (%)", "improvement (%)", "carried"]);
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for row in &rows {
        table.row([
            data.name(row.via).to_string(),
            format!("{:.1}", row.utilization_pct),
            format!("{:.1}", row.improvement_pct),
            row.carried.to_string(),
        ]);
        csv_rows.push(vec![
            data.name(row.via).to_string(),
            format!("{:.3}", row.utilization_pct),
            format!("{:.3}", row.improvement_pct),
            row.carried.to_string(),
        ]);
    }

    // Correlation between the columns (relays with a defined mean).
    let pairs: Vec<(f64, f64)> = rows
        .iter()
        .filter(|r| r.improvement_pct.is_finite())
        .map(|r| (r.utilization_pct, r.improvement_pct))
        .collect();
    let (rho, n) = if pairs.len() >= 3 {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        (spearman(&xs, &ys), pairs.len())
    } else {
        (f64::NAN, pairs.len())
    };

    let mut body = table.render();
    body.push('\n');
    body.push_str(&format!(
        "Spearman rank correlation (utilization, improvement): {rho:+.2} over {n} relays\n"
    ));
    let top_is_best = rows
        .first()
        .map(|top| {
            rows.iter()
                .filter(|r| r.improvement_pct.is_finite())
                .all(|r| r.improvement_pct <= top.improvement_pct + 25.0)
        })
        .unwrap_or(false);
    body.push_str(&format!(
        "top-utilization relay is (near-)best improver: {top_is_best}\n"
    ));

    Report {
        id: "table3",
        title: "Table III: utilization vs improvement".into(),
        body,
        csv: vec![(
            "rows".into(),
            csv(
                &["node", "utilization_pct", "improvement_pct", "carried"],
                &csv_rows,
            ),
        )],
        checks: vec![Check::banded(
            "Spearman correlation (utilization vs improvement)",
            0.7, // strong-but-imperfect in the paper's table
            rho,
            0.2,
            1.0,
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_selection_study;
    use ir_core::SessionConfig;
    use ir_workload::Schedule;

    #[test]
    fn table3_rows_have_nonzero_utilization() {
        let sc = ir_workload::build(
            43,
            &ir_workload::roster::SELECTION_CLIENTS[..1],
            &ir_workload::roster::INTERMEDIATES[..8],
            &ir_workload::roster::SERVERS[..1],
            ir_workload::Calibration::default(),
            true,
        );
        let data = run_selection_study(
            &sc,
            &[3, 5],
            Schedule::selection_study().truncated(30),
            SessionConfig::paper_defaults(),
            5,
        );
        let rows = rows_for(&data, data.clients[0]);
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(r.utilization_pct > 0.0);
            assert!(r.carried > 0);
        }
        // Sorted descending by utilization.
        for w in rows.windows(2) {
            assert!(w[0].utilization_pct >= w[1].utilization_pct);
        }
        let rep = report(&data);
        assert!(rep.render().contains("TABLE III"));
    }
}
