//! Scenario inspector: print the synthetic world's ground truth.
//!
//! Transparency tool for the substitution (DESIGN.md §2): for each
//! client, its intended category/variability and the *realised* mean
//! and coefficient of variation of its direct path over the study
//! window (sampled via [`ir_simnet::tracer`]); for each relay, its
//! quality factor. Makes the calibration auditable at a glance.

use crate::report::{csv, Report};
use ir_core::PathSpec;
use ir_simnet::time::{SimDuration, SimTime};
use ir_simnet::tracer::trace_link;
use ir_workload::{planetlab_study, Scenario, MBPS};

/// Builds the inspection report for the §2.2 scenario.
pub fn report(seed: u64) -> Report {
    let scenario = planetlab_study(seed);
    report_for(&scenario)
}

/// Builds the inspection report for any scenario.
pub fn report_for(scenario: &Scenario) -> Report {
    let topo = scenario.network.topology();
    let window_end = SimTime::from_secs(36_000); // the 10-hour study
    let step = SimDuration::from_secs(120);

    let mut clients = ir_stats::TextTable::new()
        .title("clients (ground truth + realised direct path to server 0)")
        .header([
            "client",
            "category",
            "variability",
            "base (Mbps)",
            "realised mean",
            "realised CoV",
        ]);
    let mut rows = Vec::new();
    for &c in &scenario.clients {
        let prof = scenario.profile(c);
        let direct = PathSpec::direct(c, scenario.servers[0])
            .resolve(topo)
            .expect("direct path");
        let trace = trace_link(
            &scenario.network,
            direct.links[0],
            SimTime::ZERO,
            window_end,
            step,
        );
        clients.row([
            scenario.name(c).to_string(),
            prof.category.label().to_string(),
            prof.variability.label().to_string(),
            format!("{:.2}", prof.base_rate / MBPS),
            format!("{:.2}", trace.mean() / MBPS),
            format!("{:.2}", trace.cov()),
        ]);
        rows.push(vec![
            scenario.name(c).to_string(),
            prof.category.label().to_string(),
            prof.variability.label().to_string(),
            format!("{:.4}", prof.base_rate / MBPS),
            format!("{:.4}", trace.mean() / MBPS),
            format!("{:.4}", trace.cov()),
        ]);
    }

    let mut relays = ir_stats::TextTable::new()
        .title("relays (quality factor; >1 = better-than-median connectivity)")
        .header(["relay", "quality"]);
    let mut sorted: Vec<_> = scenario
        .relays
        .iter()
        .map(|&v| (scenario.name(v).to_string(), scenario.relay_quality[&v]))
        .collect();
    sorted.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let mut relay_rows = Vec::new();
    for (name, q) in &sorted {
        relays.row([name.clone(), format!("{q:.2}")]);
        relay_rows.push(vec![name.clone(), format!("{q:.4}")]);
    }

    let mut body = clients.render();
    body.push('\n');
    body.push_str(&relays.render());

    Report {
        id: "scenario",
        title: "Scenario inspection (ground truth)".into(),
        body,
        csv: vec![
            (
                "clients".into(),
                csv(
                    &[
                        "client",
                        "category",
                        "variability",
                        "base_mbps",
                        "realised_mbps",
                        "cov",
                    ],
                    &rows,
                ),
            ),
            ("relays".into(), csv(&["relay", "quality"], &relay_rows)),
        ],
        checks: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inspection_lists_everything() {
        let sc = ir_workload::build(
            3,
            &ir_workload::roster::CLIENTS[..3],
            &ir_workload::roster::INTERMEDIATES[..3],
            &ir_workload::roster::SERVERS[..1],
            ir_workload::Calibration::default(),
            false,
        );
        let r = report_for(&sc);
        let text = r.render();
        for &c in &sc.clients {
            assert!(text.contains(sc.name(c)));
        }
        for &v in &sc.relays {
            assert!(text.contains(sc.name(v)));
        }
        assert_eq!(r.csv.len(), 2);
    }

    #[test]
    fn realised_means_near_ground_truth() {
        let sc = ir_workload::build(
            9,
            &ir_workload::roster::CLIENTS[..4],
            &ir_workload::roster::INTERMEDIATES[..2],
            &ir_workload::roster::SERVERS[..1],
            ir_workload::Calibration::default(),
            false,
        );
        let r = report_for(&sc);
        // Every realised mean should be within 3x of the base rate
        // (regimes + noise + server factor).
        for line in r.csv[0].1.lines().skip(1) {
            let cols: Vec<&str> = line.split(',').collect();
            let base: f64 = cols[3].parse().unwrap();
            let realised: f64 = cols[4].parse().unwrap();
            assert!(realised > base / 3.0 && realised < base * 3.0, "{line}");
        }
    }
}
