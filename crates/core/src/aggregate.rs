//! Study-level aggregation of [`TransferRecord`]s.
//!
//! Every consumer of a study — the experiment harness, examples,
//! downstream users — wants the same handful of numbers: improvement
//! summary conditional on relaying, penalty statistics, how often the
//! indirect path was chosen. [`StudySummary`] computes them once, with
//! the paper's definitions.

use crate::record::TransferRecord;
use ir_stats::Summary;
use serde::{Deserialize, Serialize};

/// Aggregate view of a set of transfer records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudySummary {
    /// Total records aggregated.
    pub transfers: usize,
    /// Fraction of transfers that chose an indirect path (the paper's
    /// aggregate utilization notion), in percent.
    pub chose_indirect_pct: f64,
    /// Mean improvement (%) over indirect-chosen transfers (Fig 1's
    /// population). `NaN` if none.
    pub mean_improvement_pct: f64,
    /// Median improvement (%) over indirect-chosen transfers.
    pub median_improvement_pct: f64,
    /// Fraction of indirect-chosen transfers in [0, 100]% (percent).
    pub in_band_pct: f64,
    /// Fraction of indirect-chosen transfers with negative improvement
    /// (percent) — the paper's "penalty points".
    pub penalty_points_pct: f64,
    /// Mean penalty magnitude as the slowdown ratio `(dir − sel)/sel`
    /// in percent (Table I's unit). 0 when no penalties.
    pub mean_penalty_pct: f64,
    /// Largest penalty magnitude (slowdown %, Table I's "Max").
    pub max_penalty_pct: f64,
    /// Probe timeouts observed.
    pub probe_timeouts: usize,
}

impl StudySummary {
    /// Aggregates a record set. Returns `None` for an empty input.
    pub fn of(records: &[TransferRecord]) -> Option<StudySummary> {
        if records.is_empty() {
            return None;
        }
        let chosen: Vec<&TransferRecord> = records.iter().filter(|r| r.chose_indirect()).collect();
        let imps: Vec<f64> = chosen
            .iter()
            .map(|r| r.improvement_pct())
            .filter(|v| v.is_finite())
            .collect();
        let summary = Summary::of(&imps);
        let in_band = if imps.is_empty() {
            f64::NAN
        } else {
            imps.iter().filter(|v| (0.0..=100.0).contains(*v)).count() as f64 / imps.len() as f64
                * 100.0
        };
        let penalties: Vec<f64> = chosen
            .iter()
            .filter(|r| r.is_penalty() && r.selected_throughput > 0.0)
            .map(|r| (r.direct_throughput - r.selected_throughput) / r.selected_throughput * 100.0)
            .collect();
        let penalty_points = if imps.is_empty() {
            f64::NAN
        } else {
            penalties.len() as f64 / imps.len() as f64 * 100.0
        };
        let pen_summary = Summary::of(&penalties);
        Some(StudySummary {
            transfers: records.len(),
            chose_indirect_pct: chosen.len() as f64 / records.len() as f64 * 100.0,
            mean_improvement_pct: summary.as_ref().map(|s| s.mean).unwrap_or(f64::NAN),
            median_improvement_pct: summary.as_ref().map(|s| s.median).unwrap_or(f64::NAN),
            in_band_pct: in_band,
            penalty_points_pct: penalty_points,
            mean_penalty_pct: pen_summary.as_ref().map(|s| s.mean).unwrap_or(0.0),
            max_penalty_pct: pen_summary.as_ref().map(|s| s.max).unwrap_or(0.0),
            probe_timeouts: records.iter().filter(|r| r.probe_timeout).count(),
        })
    }

    /// One-line rendering for logs and examples.
    pub fn render_line(&self) -> String {
        format!(
            "{} transfers; indirect {:.0}%; improvement mean {:+.1}% median {:+.1}%; \
             in [0,100] {:.0}%; penalties {:.1}% (avg {:.0}%, max {:.0}%)",
            self.transfers,
            self.chose_indirect_pct,
            self.mean_improvement_pct,
            self.median_improvement_pct,
            self.in_band_pct,
            self.penalty_points_pct,
            self.mean_penalty_pct,
            self.max_penalty_pct
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::PathSpec;
    use ir_simnet::time::SimTime;
    use ir_simnet::topology::NodeId;

    fn rec(via: Option<u32>, sel: f64, dir: f64) -> TransferRecord {
        let c = NodeId(0);
        let s = NodeId(1);
        TransferRecord {
            client: c,
            server: s,
            started: SimTime::ZERO,
            file_bytes: 1,
            selected: match via {
                None => PathSpec::direct(c, s),
                Some(v) => PathSpec::indirect(c, s, NodeId(v + 10)),
            },
            candidates: vec![NodeId(12)],
            direct_throughput: dir,
            selected_throughput: sel,
            probe_throughput: sel,
            selected_path_rate: sel,
            probe_timeout: false,
            failovers: 0,
            stall_ms: 0,
            abandoned: false,
        }
    }

    #[test]
    fn empty_is_none() {
        assert!(StudySummary::of(&[]).is_none());
    }

    #[test]
    fn aggregates_known_values() {
        let records = vec![
            rec(Some(1), 150.0, 100.0), // +50%
            rec(Some(1), 120.0, 100.0), // +20%
            rec(Some(1), 50.0, 100.0),  // -50% → slowdown (100-50)/50 = 100%
            rec(None, 100.0, 100.0),    // direct, excluded from Fig 1 pop
        ];
        let s = StudySummary::of(&records).unwrap();
        assert_eq!(s.transfers, 4);
        assert!((s.chose_indirect_pct - 75.0).abs() < 1e-9);
        assert!((s.mean_improvement_pct - (50.0 + 20.0 - 50.0) / 3.0).abs() < 1e-9);
        assert!((s.median_improvement_pct - 20.0).abs() < 1e-9);
        assert!((s.in_band_pct - 2.0 / 3.0 * 100.0).abs() < 1e-9);
        assert!((s.penalty_points_pct - 1.0 / 3.0 * 100.0).abs() < 1e-9);
        assert!((s.mean_penalty_pct - 100.0).abs() < 1e-9);
        assert!((s.max_penalty_pct - 100.0).abs() < 1e-9);
        assert_eq!(s.probe_timeouts, 0);
    }

    #[test]
    fn no_indirect_transfers_yield_nan_stats() {
        let records = vec![rec(None, 100.0, 100.0)];
        let s = StudySummary::of(&records).unwrap();
        assert_eq!(s.chose_indirect_pct, 0.0);
        assert!(s.mean_improvement_pct.is_nan());
        assert_eq!(s.mean_penalty_pct, 0.0);
    }

    #[test]
    fn render_line_contains_key_numbers() {
        let records = vec![rec(Some(1), 150.0, 100.0)];
        let line = StudySummary::of(&records).unwrap().render_line();
        assert!(line.contains("+50.0%"), "{line}");
        assert!(line.contains("1 transfers"), "{line}");
    }
}
