//! [`StableHash`] impls for session parameter types.
//!
//! These encodings key the on-disk study cache (`ir-artifact`): they
//! must stay **pinned**. Each impl destructures its type exhaustively,
//! so adding a field is a compile error here — the fix is to extend the
//! encoding *and* bump the consuming artefact's code-version salt so
//! stale cache entries are retired rather than wrongly reused.

use crate::path::PathSpec;
use crate::session::{
    ControlMode, FailoverConfig, ProbeMode, RebalanceConfig, SessionConfig, SessionMode,
};
use ir_artifact::{StableHash, StableHasher};

impl StableHash for PathSpec {
    fn stable_hash(&self, h: &mut StableHasher) {
        let PathSpec {
            client,
            server,
            hop_len,
            hops,
        } = *self;
        client.0.stable_hash(h);
        server.0.stable_hash(h);
        // Only the live hops participate: the fill slots are a
        // representation detail, and hashing them would make the
        // fingerprint depend on MAX_HOPS.
        h.write_len(hop_len as usize);
        for hop in &hops[..hop_len as usize] {
            hop.0.stable_hash(h);
        }
    }
}

impl StableHash for ProbeMode {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_tag(match self {
            ProbeMode::FirstToFinish => 0,
            ProbeMode::MeasureAll => 1,
        });
    }
}

impl StableHash for ControlMode {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_tag(match self {
            ControlMode::Concurrent => 0,
            ControlMode::Forked => 1,
        });
    }
}

impl StableHash for FailoverConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        let FailoverConfig {
            stall_timeout,
            max_retries,
            initial_backoff,
        } = *self;
        stall_timeout.stable_hash(h);
        max_retries.stable_hash(h);
        initial_backoff.stable_hash(h);
    }
}

impl StableHash for RebalanceConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        let RebalanceConfig {
            drift_ratio,
            stall_window,
            alpha,
        } = *self;
        drift_ratio.stable_hash(h);
        stall_window.stable_hash(h);
        alpha.stable_hash(h);
    }
}

impl StableHash for SessionMode {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            SessionMode::Racing => h.write_tag(0),
            SessionMode::Striped {
                chunks,
                k,
                rebalance,
            } => {
                h.write_tag(1);
                chunks.stable_hash(h);
                k.stable_hash(h);
                rebalance.stable_hash(h);
            }
        }
    }
}

impl StableHash for SessionConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        let SessionConfig {
            probe_bytes,
            file_bytes,
            probe_mode,
            control,
            horizon,
            failover,
            engine,
            mode,
        } = *self;
        probe_bytes.stable_hash(h);
        file_bytes.stable_hash(h);
        probe_mode.stable_hash(h);
        control.stable_hash(h);
        horizon.stable_hash(h);
        failover.stable_hash(h);
        engine.stable_hash(h);
        mode.stable_hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_artifact::fingerprint_of;

    #[test]
    fn session_config_fingerprint_tracks_every_knob() {
        let base = SessionConfig::paper_defaults();
        assert_eq!(
            fingerprint_of(&base),
            fingerprint_of(&SessionConfig::paper_defaults())
        );
        let mut failover = base;
        failover.failover = Some(FailoverConfig::paper_defaults());
        assert_ne!(fingerprint_of(&base), fingerprint_of(&failover));
        let mut mode = base;
        mode.probe_mode = ProbeMode::MeasureAll;
        assert_ne!(fingerprint_of(&base), fingerprint_of(&mode));
        let mut engine = base;
        engine.engine = crate::session::EngineMode::Reference;
        assert_ne!(fingerprint_of(&base), fingerprint_of(&engine));
        // Sharded at any thread count shares one fingerprint: results
        // are bit-identical, so threads is not a semantic input.
        let mut s2 = base;
        s2.engine = crate::session::EngineMode::Sharded { threads: 2 };
        let mut s8 = base;
        s8.engine = crate::session::EngineMode::Sharded { threads: 8 };
        assert_eq!(fingerprint_of(&s2), fingerprint_of(&s8));
        assert_ne!(fingerprint_of(&base), fingerprint_of(&s2));
        let striped = |chunks, k, rebalance| {
            let mut c = base;
            c.mode = SessionMode::Striped {
                chunks,
                k,
                rebalance,
            };
            c
        };
        let rb = RebalanceConfig::paper_defaults();
        assert_ne!(fingerprint_of(&base), fingerprint_of(&striped(8, 2, rb)));
        assert_ne!(
            fingerprint_of(&striped(8, 2, rb)),
            fingerprint_of(&striped(4, 2, rb))
        );
        assert_ne!(
            fingerprint_of(&striped(8, 2, rb)),
            fingerprint_of(&striped(8, 3, rb))
        );
        let mut drift = rb;
        drift.drift_ratio = 3.0;
        assert_ne!(
            fingerprint_of(&striped(8, 2, rb)),
            fingerprint_of(&striped(8, 2, drift))
        );
        let mut alpha = rb;
        alpha.alpha = 0.5;
        assert_ne!(
            fingerprint_of(&striped(8, 2, rb)),
            fingerprint_of(&striped(8, 2, alpha))
        );
    }
}
