//! Simulator-backed [`Transport`].
//!
//! Wraps an [`ir_simnet::sim::Network`] and derives a TCP configuration
//! per path from the topology's RTT. Cloning the underlying network
//! yields a *fork*: an isolated replica whose links will experience the
//! identical future bandwidth trajectory (bandwidth processes are pure
//! functions of their seeds), which gives experiments a control process
//! that cannot interfere with the treatment.

use crate::path::PathSpec;
use crate::transport::{Handle, RaceWin, Timing, Transport};
use ir_simnet::sim::{ConstCap, FlowId, Network};
use ir_simnet::time::{SimDuration, SimTime};
use ir_simnet::topology::Route;
use ir_tcp::{TcpConfig, TcpRateCap};

/// TCP parameter derivation for a path.
#[derive(Debug, Clone, Copy)]
pub struct TcpDerivation {
    /// Receiver window used for all connections (default 256 KiB — the
    /// probe/remainder connections of a mid-2000s well-tuned host).
    pub recv_window: u32,
    /// Steady-state loss rate applied to all paths (default 0: path
    /// rate diversity is carried by the bandwidth processes, not loss).
    pub loss_rate: f64,
}

impl Default for TcpDerivation {
    fn default() -> Self {
        TcpDerivation {
            recv_window: 256 * 1024,
            loss_rate: 0.0,
        }
    }
}

impl TcpDerivation {
    /// Builds the [`TcpConfig`] for a resolved route.
    pub fn config_for(&self, net: &Network, route: &Route) -> TcpConfig {
        let rtt = net.topology().rtt(route);
        TcpConfig::for_rtt(rtt)
            .with_loss(self.loss_rate)
            .with_recv_window(self.recv_window)
    }
}

/// A [`Transport`] over the fluid network simulator.
pub struct SimTransport {
    net: Network,
    tcp: TcpDerivation,
    handles: Vec<FlowId>,
}

impl SimTransport {
    /// Wraps a network with the default TCP derivation.
    pub fn new(net: Network) -> Self {
        SimTransport::with_tcp(net, TcpDerivation::default())
    }

    /// Wraps a network with an explicit TCP derivation.
    pub fn with_tcp(net: Network, tcp: TcpDerivation) -> Self {
        SimTransport {
            net,
            tcp,
            handles: Vec::new(),
        }
    }

    /// Immutable access to the underlying network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Mutable access to the underlying network (e.g. to advance time
    /// between scheduled transfers).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Hindsight oracle: the whole-file throughput `path` would deliver
    /// for a transfer starting now, measured on an isolated replica so
    /// nothing in the real network is disturbed. `None` if it would not
    /// finish within `horizon`.
    pub fn oracle_throughput(
        &self,
        path: &PathSpec,
        bytes: u64,
        horizon: SimDuration,
    ) -> Option<f64> {
        let mut replica = self.net.clone();
        let route = path
            .resolve(replica.topology())
            .unwrap_or_else(|| panic!("unresolvable path {path}"));
        let cfg = self.tcp.config_for(&replica, &route);
        let id = replica.start_flow(route, bytes, Box::new(TcpRateCap::new(cfg)));
        let deadline = replica.now() + horizon;
        replica.run_flow(id, deadline).map(|c| c.throughput())
    }

    fn flow(&self, h: Handle) -> FlowId {
        self.handles[h.0 as usize]
    }
}

impl Transport for SimTransport {
    fn now(&self) -> SimTime {
        self.net.now()
    }

    fn begin(&mut self, path: &PathSpec, bytes: u64) -> Handle {
        let route = path
            .resolve(self.net.topology())
            .unwrap_or_else(|| panic!("unresolvable path {path}"));
        let cfg = self.tcp.config_for(&self.net, &route);
        let id = self
            .net
            .start_flow(route, bytes, Box::new(TcpRateCap::new(cfg)));
        let h = Handle(self.handles.len() as u64);
        self.handles.push(id);
        h
    }

    fn resolvable(&self, path: &PathSpec) -> bool {
        path.resolve(self.net.topology()).is_some()
    }

    fn begin_warm(&mut self, path: &PathSpec, bytes: u64) -> Handle {
        let route = path
            .resolve(self.net.topology())
            .unwrap_or_else(|| panic!("unresolvable path {path}"));
        let cfg = self.tcp.config_for(&self.net, &route);
        // Warm connection: the window is already open, so the only
        // ceiling left is the steady-state one.
        let steady = TcpRateCap::new(cfg).steady_rate();
        let id = self
            .net
            .start_flow(route, bytes, Box::new(ConstCap(steady)));
        let h = Handle(self.handles.len() as u64);
        self.handles.push(id);
        h
    }

    fn race(&mut self, handles: &[Handle], horizon: SimDuration) -> Option<RaceWin> {
        let ids: Vec<FlowId> = handles.iter().map(|&h| self.flow(h)).collect();
        let deadline = self.net.now() + horizon;
        let win = self.net.run_until_first_of(&ids, deadline)?;
        let index = ids.iter().position(|&id| id == win.id).expect("winner id");
        Some(RaceWin {
            index,
            timing: Timing {
                started: win.started,
                finished: win.finished,
                bytes: win.bytes,
            },
        })
    }

    fn finish(&mut self, handle: Handle, horizon: SimDuration) -> Option<Timing> {
        let id = self.flow(handle);
        let deadline = self.net.now() + horizon;
        self.net.run_flow(id, deadline).map(|c| Timing {
            started: c.started,
            finished: c.finished,
            bytes: c.bytes,
        })
    }

    fn cancel(&mut self, handle: Handle) {
        let id = self.flow(handle);
        self.net.cancel_flow(id);
    }

    fn progress(&self, handle: Handle) -> u64 {
        self.net.flow_progress(self.flow(handle))
    }

    fn sleep(&mut self, d: SimDuration) {
        let until = self.net.now() + d;
        self.net.advance_until(until);
    }

    fn fork(&self) -> Option<Box<dyn Transport>> {
        Some(Box::new(SimTransport {
            net: self.net.clone(),
            tcp: self.tcp,
            handles: Vec::new(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_simnet::bandwidth::ConstantProcess;
    use ir_simnet::topology::{NodeKind, Topology};

    fn transport(direct: f64, via_up: f64, via_down: f64) -> (SimTransport, PathSpec, PathSpec) {
        let mut t = Topology::new();
        let c = t.add_node("c", NodeKind::Client);
        let v = t.add_node("v", NodeKind::Intermediate);
        let s = t.add_node("s", NodeKind::Server);
        let l_cs = t.add_link(c, s, SimDuration::from_millis(60));
        let l_cv = t.add_link(c, v, SimDuration::from_millis(40));
        let l_vs = t.add_link(v, s, SimDuration::from_millis(10));
        let mut net = Network::new(t, 1.0);
        net.set_link_process(l_cs, Box::new(ConstantProcess::new(direct)));
        net.set_link_process(l_cv, Box::new(ConstantProcess::new(via_up)));
        net.set_link_process(l_vs, Box::new(ConstantProcess::new(via_down)));
        let topo = net.topology();
        let d = PathSpec::direct(
            topo.node_by_name("c").unwrap(),
            topo.node_by_name("s").unwrap(),
        );
        let i = PathSpec::indirect(d.client, d.server, topo.node_by_name("v").unwrap());
        (SimTransport::new(net), d, i)
    }

    #[test]
    fn race_picks_faster_path() {
        let (mut tp, d, i) = transport(50_000.0, 400_000.0, 10e6);
        let hd = tp.begin(&d, 100_000);
        let hi = tp.begin(&i, 100_000);
        let win = tp.race(&[hd, hi], SimDuration::from_secs(600)).unwrap();
        assert_eq!(win.index, 1, "indirect should win");
        assert!(win.timing.throughput() > 50_000.0);
        tp.cancel(hd);
    }

    #[test]
    fn finish_runs_to_completion() {
        let (mut tp, d, _) = transport(100_000.0, 1.0, 1.0);
        let h = tp.begin(&d, 500_000);
        let t = tp.finish(h, SimDuration::from_secs(600)).unwrap();
        // Slower than raw link rate because of handshake+slow start, but
        // in the ballpark.
        let thr = t.throughput();
        assert!(thr > 60_000.0 && thr <= 100_000.0, "thr {thr}");
    }

    #[test]
    fn fork_is_isolated_but_identical() {
        let (tp, d, _) = transport(80_000.0, 1.0, 1.0);
        let mut f1 = tp.fork().unwrap();
        let mut f2 = tp.fork().unwrap();
        let h1 = f1.begin(&d, 200_000);
        let h2 = f2.begin(&d, 200_000);
        let t1 = f1.finish(h1, SimDuration::from_secs(600)).unwrap();
        let t2 = f2.finish(h2, SimDuration::from_secs(600)).unwrap();
        assert_eq!(t1.finished, t2.finished, "replicas diverged");
    }

    #[test]
    fn oracle_does_not_disturb_network() {
        let (mut tp, d, i) = transport(50_000.0, 300_000.0, 10e6);
        let o1 = tp.oracle_throughput(&i, 1_000_000, SimDuration::from_secs(600));
        assert!(o1.unwrap() > 100_000.0);
        // Network clock unchanged.
        assert_eq!(tp.now(), SimTime::ZERO);
        // And a real transfer still behaves.
        let h = tp.begin(&d, 50_000);
        assert!(tp.finish(h, SimDuration::from_secs(600)).is_some());
    }

    #[test]
    fn oracle_times_out_on_dead_path() {
        let (tp, _, i) = transport(50_000.0, ir_simnet::bandwidth::MIN_RATE, 1.0);
        assert!(tp
            .oracle_throughput(&i, 10_000_000, SimDuration::from_secs(60))
            .is_none());
    }

    #[test]
    #[should_panic(expected = "unresolvable path")]
    fn unresolvable_path_panics() {
        let (mut tp, d, _) = transport(1.0, 1.0, 1.0);
        let backwards = PathSpec::direct(d.server, d.client);
        tp.begin(&backwards, 10);
    }
}
