//! The transport abstraction the selection framework drives.
//!
//! The framework's logic — probe, race, select, fetch the remainder —
//! is independent of whether bytes move through the fluid simulator or
//! real sockets. [`Transport`] captures the operations the session
//! needs; `ir-core` ships the simulator-backed [`crate::sim_transport::
//! SimTransport`], and `ir-relay` mirrors the same protocol over
//! loopback TCP.

use crate::path::PathSpec;
use ir_simnet::time::{SimDuration, SimTime};

/// Handle to an in-flight transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Handle(pub u64);

/// Timing of a finished transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timing {
    /// When the transfer began.
    pub started: SimTime,
    /// When the last byte arrived.
    pub finished: SimTime,
    /// Bytes moved.
    pub bytes: u64,
}

impl Timing {
    /// Mean goodput in bytes/sec. Infinite for a zero-duration transfer.
    pub fn throughput(&self) -> f64 {
        let dt = (self.finished - self.started).as_secs_f64();
        if dt == 0.0 {
            f64::INFINITY
        } else {
            self.bytes as f64 / dt
        }
    }
}

/// Result of racing several in-flight transfers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RaceWin {
    /// Index into the handle slice passed to `race`.
    pub index: usize,
    /// Timing of the winner.
    pub timing: Timing,
}

/// Abstract transport: start, race, finish, cancel transfers between
/// the nodes of a fixed topology.
pub trait Transport {
    /// Current time on this transport's clock.
    fn now(&self) -> SimTime;

    /// Starts a transfer of `bytes` bytes over `path` (a fresh
    /// connection: handshake and slow start included).
    ///
    /// # Panics
    ///
    /// Panics if the path cannot be resolved on this transport.
    fn begin(&mut self, path: &PathSpec, bytes: u64) -> Handle;

    /// True when this transport can carry `path` at all. The session
    /// runner drops unresolvable candidate paths (with telemetry)
    /// before [`Transport::begin`], which is entitled to panic on
    /// them. Default: everything is carriable, for transports without
    /// a topology to consult.
    fn resolvable(&self, path: &PathSpec) -> bool {
        let _ = path;
        true
    }

    /// Starts a transfer over an already-warm connection on `path` —
    /// no handshake, congestion window already open. This is the
    /// remainder request of §2.1: another `Range` on the connection the
    /// winning probe just used. Defaults to a cold [`Transport::begin`]
    /// for transports without connection reuse.
    fn begin_warm(&mut self, path: &PathSpec, bytes: u64) -> Handle {
        self.begin(path, bytes)
    }

    /// Blocks until the first of `handles` completes or `horizon`
    /// elapses. Losers stay in flight (cancel them explicitly).
    fn race(&mut self, handles: &[Handle], horizon: SimDuration) -> Option<RaceWin>;

    /// Blocks until `handle` completes or `horizon` elapses.
    fn finish(&mut self, handle: Handle, horizon: SimDuration) -> Option<Timing>;

    /// Cancels an in-flight transfer (no-op if finished).
    fn cancel(&mut self, handle: Handle);

    /// Bytes delivered so far on an in-flight (or finished) transfer.
    /// Best effort: transports without byte-level visibility report 0.
    /// The failover loop uses this to credit partial progress before
    /// abandoning a stalled path.
    fn progress(&self, handle: Handle) -> u64 {
        let _ = handle;
        0
    }

    /// Blocks the caller for `d` on this transport's clock — the
    /// failover loop's backoff waits. Default: no-op, for transports
    /// whose clock cannot be advanced without traffic (real sockets
    /// sleep in the OS instead).
    fn sleep(&mut self, d: SimDuration) {
        let _ = d;
    }

    /// An isolated replica experiencing identical future network
    /// conditions, when the transport supports it (the simulator does;
    /// real sockets do not). Used for oracle baselines and the §4.2
    /// "closely in time but not interfering" control mode.
    fn fork(&self) -> Option<Box<dyn Transport>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_throughput() {
        let t = Timing {
            started: SimTime::from_secs(10),
            finished: SimTime::from_secs(14),
            bytes: 400,
        };
        assert!((t.throughput() - 100.0).abs() < 1e-12);
        let inst = Timing {
            started: SimTime::ZERO,
            finished: SimTime::ZERO,
            bytes: 0,
        };
        assert!(inst.throughput().is_infinite());
    }
}
