//! `ir-core` — the indirect-routing selection framework.
//!
//! This crate is the reproduction's primary contribution, implementing
//! the system of *"A Performance Analysis of Indirect Routing"* (Opos
//! et al., IPPS 2007): improve the throughput of large downloads by
//! racing an HTTP range probe over the default ("direct") Internet path
//! and one or more overlay ("indirect") paths through intermediate
//! relay nodes, then fetching the bulk of the file over whichever path
//! the probe predicts is fastest.
//!
//! * [`path`] — [`path::PathSpec`]: direct vs indirect-via-relay.
//! * [`transport`] — the abstraction the framework drives; backed by
//!   the fluid simulator here ([`sim_transport::SimTransport`]) and by
//!   real loopback sockets in `ir-relay`.
//! * [`predictor`] — the paper's first-portion predictor plus an EWMA
//!   extension.
//! * [`policy`] — candidate-relay policies: direct-only, the §2.2
//!   static single relay, the §4 uniform random set, the §6
//!   utilization-weighted extension, and bandit baselines (ε-greedy,
//!   UCB1) for ablations.
//! * [`session`] — the §2.1 protocol: concurrent control download,
//!   probe race, remainder fetch, improvement measurement.
//! * [`record`] — per-transfer records and the three utilization
//!   statistics used across Tables II–III and Fig 5.
//! * [`aggregate`] — [`aggregate::StudySummary`]: the headline numbers
//!   (Fig 1 + Table I definitions) from any record set, in one call.

pub mod aggregate;
pub mod path;
pub mod policy;
pub mod predictor;
pub mod record;
pub mod session;
pub mod sim_transport;
pub mod stable;
pub mod transport;

pub use aggregate::StudySummary;
pub use path::{PathSpec, MAX_HOPS};
pub use policy::{
    DirectOnly, EpsilonGreedy, FullSet, RandomSet, SelectCtx, SelectionPolicy, StaticSingle, Ucb1,
    UtilizationWeighted,
};
pub use predictor::{EwmaBlend, FirstPortion, Predictor};
pub use record::{improvement, TransferRecord, UtilizationTracker};
pub use session::{
    run_paths_session_traced, run_session, run_session_traced, select_measure_all, ControlMode,
    EngineMode, FailoverConfig, ProbeMode, RebalanceConfig, SessionConfig, SessionMode,
};
pub use sim_transport::{SimTransport, TcpDerivation};
pub use transport::{Handle, RaceWin, Timing, Transport};
