//! Intermediate-node selection policies.
//!
//! A policy decides, per transfer, **which relays are candidates** (the
//! paper's "random set", §4.1); the probe race then picks among the
//! candidates plus the direct path. Policies may learn from outcomes
//! via [`SelectionPolicy::observe`] — the utilization-weighted policy
//! is exactly the extension the paper's §6 proposes ("use the
//! utilization data to weight the likelihood of a node appearing in the
//! random set").

use crate::record::TransferRecord;
use ir_simnet::topology::NodeId;
use ir_stats::sampling::weighted_index;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Context for a candidate-selection decision.
#[derive(Debug, Clone)]
pub struct SelectCtx<'a> {
    /// The client about to transfer.
    pub client: NodeId,
    /// The destination server.
    pub server: NodeId,
    /// Every relay available to this client (the paper's "full set").
    pub full_set: &'a [NodeId],
    /// Sequence number of this transfer for this client (0-based).
    pub transfer_index: u64,
}

/// A relay-candidate selection policy.
pub trait SelectionPolicy: Send {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Relays to probe for this transfer. Empty means direct-only.
    fn candidates(&mut self, ctx: &SelectCtx<'_>) -> Vec<NodeId>;

    /// Learns from a completed transfer.
    fn observe(&mut self, _rec: &TransferRecord) {}
}

/// Never uses relays: the paper's control process.
#[derive(Debug, Clone, Copy, Default)]
pub struct DirectOnly;

impl SelectionPolicy for DirectOnly {
    fn name(&self) -> &'static str {
        "direct-only"
    }
    fn candidates(&mut self, _ctx: &SelectCtx<'_>) -> Vec<NodeId> {
        Vec::new()
    }
}

/// Always probes one fixed relay — the §2.2 configuration ("a single
/// indirect path that we determined a priori to be a good one").
#[derive(Debug, Clone, Copy)]
pub struct StaticSingle(pub NodeId);

impl SelectionPolicy for StaticSingle {
    fn name(&self) -> &'static str {
        "static-single"
    }
    fn candidates(&mut self, _ctx: &SelectCtx<'_>) -> Vec<NodeId> {
        vec![self.0]
    }
}

/// Probes every relay in the full set (the k = 35 end of Fig 6).
#[derive(Debug, Clone, Copy, Default)]
pub struct FullSet;

impl SelectionPolicy for FullSet {
    fn name(&self) -> &'static str {
        "full-set"
    }
    fn candidates(&mut self, ctx: &SelectCtx<'_>) -> Vec<NodeId> {
        ctx.full_set.to_vec()
    }
}

/// The paper's §4 policy: a uniform random subset of size `k` drawn per
/// transfer.
#[derive(Debug, Clone)]
pub struct RandomSet {
    k: usize,
    rng: StdRng,
}

impl RandomSet {
    /// Creates a random-set policy of size `k`, seeded for determinism.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k > 0, "random set must be non-empty");
        RandomSet {
            k,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The set size.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl SelectionPolicy for RandomSet {
    fn name(&self) -> &'static str {
        "random-set"
    }
    fn candidates(&mut self, ctx: &SelectCtx<'_>) -> Vec<NodeId> {
        let k = self.k.min(ctx.full_set.len());
        let mut set: Vec<NodeId> = ctx
            .full_set
            .choose_multiple(&mut self.rng, k)
            .copied()
            .collect();
        set.sort();
        set
    }
}

/// The §6 extension: subset sampling weighted by historical
/// utilization, with Laplace smoothing so unexplored relays keep a
/// nonzero chance.
#[derive(Debug, Clone)]
pub struct UtilizationWeighted {
    k: usize,
    rng: StdRng,
    appeared: BTreeMap<NodeId, u64>,
    chosen: BTreeMap<NodeId, u64>,
}

impl UtilizationWeighted {
    /// Creates a utilization-weighted policy of subset size `k`.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k > 0, "subset must be non-empty");
        UtilizationWeighted {
            k,
            rng: StdRng::seed_from_u64(seed),
            appeared: BTreeMap::new(),
            chosen: BTreeMap::new(),
        }
    }

    /// The smoothed utilization weight of a relay:
    /// `(chosen + 1) / (appeared + 2)`.
    pub fn weight(&self, via: NodeId) -> f64 {
        let a = self.appeared.get(&via).copied().unwrap_or(0) as f64;
        let c = self.chosen.get(&via).copied().unwrap_or(0) as f64;
        (c + 1.0) / (a + 2.0)
    }
}

impl SelectionPolicy for UtilizationWeighted {
    fn name(&self) -> &'static str {
        "utilization-weighted"
    }

    fn candidates(&mut self, ctx: &SelectCtx<'_>) -> Vec<NodeId> {
        let k = self.k.min(ctx.full_set.len());
        // Weighted sampling without replacement.
        let mut pool: Vec<NodeId> = ctx.full_set.to_vec();
        let mut out = Vec::with_capacity(k);
        for _ in 0..k {
            let weights: Vec<f64> = pool.iter().map(|&v| self.weight(v)).collect();
            let idx = weighted_index(&mut self.rng, &weights);
            out.push(pool.swap_remove(idx));
        }
        out.sort();
        out
    }

    fn observe(&mut self, rec: &TransferRecord) {
        for &via in &rec.candidates {
            *self.appeared.entry(via).or_insert(0) += 1;
        }
        if let Some(via) = rec.selected.via() {
            *self.chosen.entry(via).or_insert(0) += 1;
        }
    }
}

/// ε-greedy single-relay bandit (extension / ablation baseline): with
/// probability ε probe a random relay, otherwise the relay with the
/// best mean observed improvement.
#[derive(Debug, Clone)]
pub struct EpsilonGreedy {
    epsilon: f64,
    rng: StdRng,
    sum: BTreeMap<NodeId, f64>,
    n: BTreeMap<NodeId, u64>,
}

impl EpsilonGreedy {
    /// Creates an ε-greedy policy.
    pub fn new(epsilon: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&epsilon), "bad epsilon");
        EpsilonGreedy {
            epsilon,
            rng: StdRng::seed_from_u64(seed),
            sum: BTreeMap::new(),
            n: BTreeMap::new(),
        }
    }

    fn mean(&self, via: NodeId) -> Option<f64> {
        let n = *self.n.get(&via)?;
        Some(self.sum[&via] / n as f64)
    }
}

impl SelectionPolicy for EpsilonGreedy {
    fn name(&self) -> &'static str {
        "epsilon-greedy"
    }

    fn candidates(&mut self, ctx: &SelectCtx<'_>) -> Vec<NodeId> {
        use rand::Rng;
        if ctx.full_set.is_empty() {
            return Vec::new();
        }
        // Explore unvisited arms first, then ε-greedy.
        if let Some(&unvisited) = ctx.full_set.iter().find(|v| !self.n.contains_key(v)) {
            return vec![unvisited];
        }
        let explore = self.rng.gen::<f64>() < self.epsilon;
        let pick = if explore {
            *ctx.full_set
                .choose(&mut self.rng)
                .expect("non-empty full set")
        } else {
            *ctx.full_set
                .iter()
                .max_by(|a, b| {
                    self.mean(**a)
                        .unwrap_or(f64::NEG_INFINITY)
                        .partial_cmp(&self.mean(**b).unwrap_or(f64::NEG_INFINITY))
                        .unwrap()
                })
                .expect("non-empty full set")
        };
        vec![pick]
    }

    fn observe(&mut self, rec: &TransferRecord) {
        // Attribute the observed improvement to the probed relay
        // (candidates are singletons for this policy).
        for &via in &rec.candidates {
            let imp = rec.improvement();
            if imp.is_finite() {
                *self.sum.entry(via).or_insert(0.0) += imp;
                *self.n.entry(via).or_insert(0) += 1;
            }
        }
    }
}

/// UCB1 single-relay bandit (extension / ablation baseline).
#[derive(Debug, Clone, Default)]
pub struct Ucb1 {
    sum: BTreeMap<NodeId, f64>,
    n: BTreeMap<NodeId, u64>,
    total: u64,
}

impl Ucb1 {
    /// Creates a UCB1 policy.
    pub fn new() -> Self {
        Ucb1::default()
    }

    fn score(&self, via: NodeId) -> f64 {
        match self.n.get(&via) {
            None => f64::INFINITY, // unexplored first
            Some(&n) => {
                let mean = self.sum[&via] / n as f64;
                mean + (2.0 * (self.total.max(1) as f64).ln() / n as f64).sqrt()
            }
        }
    }
}

impl SelectionPolicy for Ucb1 {
    fn name(&self) -> &'static str {
        "ucb1"
    }

    fn candidates(&mut self, ctx: &SelectCtx<'_>) -> Vec<NodeId> {
        if ctx.full_set.is_empty() {
            return Vec::new();
        }
        let best = *ctx
            .full_set
            .iter()
            .max_by(|a, b| self.score(**a).partial_cmp(&self.score(**b)).unwrap())
            .expect("non-empty full set");
        vec![best]
    }

    fn observe(&mut self, rec: &TransferRecord) {
        for &via in &rec.candidates {
            let imp = rec.improvement();
            if imp.is_finite() {
                *self.sum.entry(via).or_insert(0.0) += imp;
                *self.n.entry(via).or_insert(0) += 1;
                self.total += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::PathSpec;
    use ir_simnet::time::SimTime;

    fn ctx<'a>(full: &'a [NodeId]) -> SelectCtx<'a> {
        SelectCtx {
            client: NodeId(0),
            server: NodeId(1),
            full_set: full,
            transfer_index: 0,
        }
    }

    fn nodes(ids: &[u32]) -> Vec<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    fn rec_with(via: Option<NodeId>, cands: &[NodeId], sel: f64, dir: f64) -> TransferRecord {
        TransferRecord {
            client: NodeId(100),
            server: NodeId(101),
            started: SimTime::ZERO,
            file_bytes: 1,
            selected: match via {
                None => PathSpec::direct(NodeId(100), NodeId(101)),
                Some(v) => PathSpec::indirect(NodeId(100), NodeId(101), v),
            },
            candidates: cands.to_vec(),
            direct_throughput: dir,
            selected_throughput: sel,
            probe_throughput: sel,
            selected_path_rate: sel,
            probe_timeout: false,
            failovers: 0,
            stall_ms: 0,
            abandoned: false,
        }
    }

    #[test]
    fn direct_only_has_no_candidates() {
        let full = nodes(&[2, 3]);
        assert!(DirectOnly.candidates(&ctx(&full)).is_empty());
    }

    #[test]
    fn static_single_always_same() {
        let full = nodes(&[2, 3]);
        let mut p = StaticSingle(NodeId(3));
        assert_eq!(p.candidates(&ctx(&full)), nodes(&[3]));
    }

    #[test]
    fn full_set_returns_everything() {
        let full = nodes(&[2, 3, 4]);
        assert_eq!(FullSet.candidates(&ctx(&full)), full);
    }

    #[test]
    fn random_set_size_and_membership() {
        let full = nodes(&[10, 11, 12, 13, 14, 15]);
        let mut p = RandomSet::new(3, 7);
        for _ in 0..50 {
            let c = p.candidates(&ctx(&full));
            assert_eq!(c.len(), 3);
            let mut d = c.clone();
            d.dedup();
            assert_eq!(d.len(), 3, "duplicates in {c:?}");
            assert!(c.iter().all(|v| full.contains(v)));
        }
    }

    #[test]
    fn random_set_clamps_to_full_set() {
        let full = nodes(&[1, 2]);
        let mut p = RandomSet::new(10, 1);
        assert_eq!(p.candidates(&ctx(&full)).len(), 2);
    }

    #[test]
    fn random_set_deterministic_per_seed() {
        let full = nodes(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let a: Vec<_> = {
            let mut p = RandomSet::new(3, 42);
            (0..10).map(|_| p.candidates(&ctx(&full))).collect()
        };
        let b: Vec<_> = {
            let mut p = RandomSet::new(3, 42);
            (0..10).map(|_| p.candidates(&ctx(&full))).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn utilization_weighted_learns_preference() {
        let full = nodes(&[1, 2]);
        let mut p = UtilizationWeighted::new(1, 3);
        // Relay 1 always chosen when it appears; relay 2 never.
        for _ in 0..30 {
            p.observe(&rec_with(Some(NodeId(1)), &nodes(&[1]), 2.0, 1.0));
            p.observe(&rec_with(None, &nodes(&[2]), 1.0, 1.0));
        }
        assert!(p.weight(NodeId(1)) > 0.9);
        assert!(p.weight(NodeId(2)) < 0.1);
        // Sampling should now heavily favour relay 1.
        let picks: Vec<_> = (0..200).map(|_| p.candidates(&ctx(&full))[0]).collect();
        let ones = picks.iter().filter(|&&v| v == NodeId(1)).count();
        assert!(ones > 150, "only {ones}/200 favoured");
    }

    #[test]
    fn epsilon_greedy_explores_then_exploits() {
        let full = nodes(&[1, 2, 3]);
        let mut p = EpsilonGreedy::new(0.0, 9); // pure exploit after init
                                                // First three picks visit each arm once.
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..3 {
            let c = p.candidates(&ctx(&full));
            assert_eq!(c.len(), 1);
            seen.insert(c[0]);
            // Arm 2 performs best.
            let reward = if c[0] == NodeId(2) { 1.0 } else { 0.1 };
            p.observe(&rec_with(Some(c[0]), &c, 1.0 + reward, 1.0));
        }
        assert_eq!(seen.len(), 3);
        // Now it should lock onto arm 2.
        for _ in 0..10 {
            assert_eq!(p.candidates(&ctx(&full)), nodes(&[2]));
        }
    }

    #[test]
    fn ucb1_visits_all_arms_then_prefers_best() {
        let full = nodes(&[1, 2, 3]);
        let mut p = Ucb1::new();
        let mut counts = std::collections::BTreeMap::new();
        for _ in 0..60 {
            let c = p.candidates(&ctx(&full));
            *counts.entry(c[0]).or_insert(0) += 1;
            let reward = if c[0] == NodeId(3) { 0.8 } else { 0.05 };
            p.observe(&rec_with(Some(c[0]), &c, 1.0 + reward, 1.0));
        }
        assert!(counts[&NodeId(3)] > counts[&NodeId(1)]);
        assert!(counts[&NodeId(3)] > counts[&NodeId(2)]);
    }

    #[test]
    fn bandits_handle_empty_full_set() {
        let full: Vec<NodeId> = Vec::new();
        assert!(EpsilonGreedy::new(0.1, 1)
            .candidates(&ctx(&full))
            .is_empty());
        assert!(Ucb1::new().candidates(&ctx(&full)).is_empty());
    }
}
