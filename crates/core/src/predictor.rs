//! Throughput predictors.
//!
//! The paper's predictor is deliberately simple: "download a small
//! amount of data over both … paths, and … use the measured throughputs
//! as predictors of the throughputs for the entire download" (§2.1).
//! That is [`FirstPortion`]. The imperfection of this predictor is a
//! *finding* of the paper (§4.3: "not a perfect way of making
//! decisions"), so we also provide an EWMA-blended predictor as an
//! extension for the ablation benchmarks.

use crate::path::PathSpec;
use std::collections::BTreeMap;

/// Predicts a path's whole-transfer throughput from a probe measurement
/// (and possibly history).
pub trait Predictor: Send {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Predicted whole-transfer throughput (bytes/sec) for `path` given
    /// the just-measured probe throughput.
    fn predict(&mut self, path: &PathSpec, probe_rate: f64) -> f64;

    /// Feeds back the realized throughput of a completed transfer on
    /// `path` so history-based predictors can learn.
    fn observe(&mut self, path: &PathSpec, realized_rate: f64);
}

/// The paper's predictor: the probe rate *is* the prediction.
#[derive(Debug, Clone, Copy, Default)]
pub struct FirstPortion;

impl Predictor for FirstPortion {
    fn name(&self) -> &'static str {
        "first-portion"
    }
    fn predict(&mut self, _path: &PathSpec, probe_rate: f64) -> f64 {
        probe_rate
    }
    fn observe(&mut self, _path: &PathSpec, _realized: f64) {}
}

/// Blends the probe with an exponentially weighted moving average of
/// past realized throughputs on the same path:
/// `prediction = w·probe + (1-w)·ewma` (falling back to the probe when
/// the path has no history).
#[derive(Debug, Clone)]
pub struct EwmaBlend {
    /// Weight on the fresh probe (1.0 degenerates to [`FirstPortion`]).
    probe_weight: f64,
    /// EWMA decay for history updates.
    alpha: f64,
    history: BTreeMap<PathSpec, f64>,
}

impl EwmaBlend {
    /// Creates a blended predictor.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are in `[0, 1]`.
    pub fn new(probe_weight: f64, alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&probe_weight), "bad probe weight");
        assert!((0.0..=1.0).contains(&alpha), "bad alpha");
        EwmaBlend {
            probe_weight,
            alpha,
            history: BTreeMap::new(),
        }
    }

    /// Current EWMA estimate for a path, if any.
    pub fn history(&self, path: &PathSpec) -> Option<f64> {
        self.history.get(path).copied()
    }
}

impl Predictor for EwmaBlend {
    fn name(&self) -> &'static str {
        "ewma-blend"
    }

    fn predict(&mut self, path: &PathSpec, probe_rate: f64) -> f64 {
        match self.history.get(path) {
            None => probe_rate,
            Some(&h) => self.probe_weight * probe_rate + (1.0 - self.probe_weight) * h,
        }
    }

    fn observe(&mut self, path: &PathSpec, realized: f64) {
        let e = self.history.entry(*path).or_insert(realized);
        *e = self.alpha * realized + (1.0 - self.alpha) * *e;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_simnet::topology::NodeId;

    fn path(via: Option<u32>) -> PathSpec {
        match via {
            None => PathSpec::direct(NodeId(0), NodeId(1)),
            Some(v) => PathSpec::indirect(NodeId(0), NodeId(1), NodeId(v)),
        }
    }

    #[test]
    fn first_portion_is_identity() {
        let mut p = FirstPortion;
        assert_eq!(p.predict(&path(None), 123.0), 123.0);
        p.observe(&path(None), 999.0); // no effect
        assert_eq!(p.predict(&path(None), 5.0), 5.0);
    }

    #[test]
    fn ewma_falls_back_to_probe_without_history() {
        let mut p = EwmaBlend::new(0.5, 0.3);
        assert_eq!(p.predict(&path(Some(7)), 200.0), 200.0);
    }

    #[test]
    fn ewma_blends_after_observations() {
        let mut p = EwmaBlend::new(0.5, 1.0); // history = last observation
        let pa = path(Some(3));
        p.observe(&pa, 100.0);
        // prediction = 0.5*300 + 0.5*100 = 200.
        assert!((p.predict(&pa, 300.0) - 200.0).abs() < 1e-12);
        // Different path unaffected.
        assert_eq!(p.predict(&path(Some(4)), 300.0), 300.0);
    }

    #[test]
    fn ewma_decay() {
        let mut p = EwmaBlend::new(0.0, 0.5);
        let pa = path(None);
        p.observe(&pa, 100.0); // init 100
        p.observe(&pa, 200.0); // 0.5*200+0.5*100 = 150
        assert!((p.history(&pa).unwrap() - 150.0).abs() < 1e-12);
        // probe_weight 0 → prediction is pure history.
        assert!((p.predict(&pa, 1e9) - 150.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bad probe weight")]
    fn rejects_bad_weight() {
        EwmaBlend::new(1.5, 0.5);
    }
}
