//! Transfer records and utilization bookkeeping.
//!
//! One [`TransferRecord`] per experiment iteration captures everything
//! the paper's analysis needs: the control (direct) throughput, the
//! treatment (selected) throughput, which path won, and the probe
//! measurements. [`UtilizationTracker`] implements both of the paper's
//! utilization definitions — per-client (§3.2, Table II) and aggregate
//! (§3.4, Fig 5) — plus the §4.3 definition over random sets
//! (Table III).

use crate::path::PathSpec;
use ir_simnet::time::SimTime;
use ir_simnet::topology::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Throughput improvement of `selected` relative to `direct`, as a
/// fraction (0.49 = +49%, the paper's headline average).
///
/// Returns `NaN` if the direct throughput is non-positive.
pub fn improvement(selected: f64, direct: f64) -> f64 {
    if direct <= 0.0 {
        f64::NAN
    } else {
        (selected - direct) / direct
    }
}

/// Full record of one experiment iteration (one file downloaded by both
/// the control process and the selecting process).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferRecord {
    /// The client node.
    pub client: NodeId,
    /// The server node.
    pub server: NodeId,
    /// When the iteration began.
    pub started: SimTime,
    /// File size in bytes.
    pub file_bytes: u64,
    /// The path the predictor selected.
    pub selected: PathSpec,
    /// Relays that were candidates this iteration (the "random set").
    pub candidates: Vec<NodeId>,
    /// Throughput of the control process (direct path, whole file),
    /// bytes/sec.
    pub direct_throughput: f64,
    /// Throughput of the selecting process (probe + remainder over the
    /// selected path, whole file), bytes/sec.
    pub selected_throughput: f64,
    /// Probe throughput of the winning path, bytes/sec (the predictor's
    /// estimate of the path's rate).
    pub probe_throughput: f64,
    /// Realized throughput of the remainder phase on the selected path,
    /// bytes/sec (no probe overhead) — the quantity Fig 4 plots over
    /// time. `NaN` when there was no remainder phase.
    pub selected_path_rate: f64,
    /// True if the probe race failed to finish before its horizon and
    /// the session fell back to the direct path.
    pub probe_timeout: bool,
    /// Mid-transfer path switches forced by a dead or stalled selected
    /// path (0 when failover is disabled or never needed).
    pub failovers: u32,
    /// Total milliseconds the selecting process spent making no
    /// progress: zero-byte attempt windows plus backoff waits.
    pub stall_ms: u64,
    /// True if the transfer was abandoned — every retry and surviving
    /// candidate was exhausted before the file completed.
    pub abandoned: bool,
}

impl TransferRecord {
    /// Fractional improvement of the selecting process over the control
    /// (see [`improvement`]).
    pub fn improvement(&self) -> f64 {
        improvement(self.selected_throughput, self.direct_throughput)
    }

    /// Improvement in percent — the unit of Figs 1–3 and 6.
    pub fn improvement_pct(&self) -> f64 {
        self.improvement() * 100.0
    }

    /// True if an indirect path was selected.
    pub fn chose_indirect(&self) -> bool {
        self.selected.is_indirect()
    }

    /// True if this record is a penalty (negative improvement).
    pub fn is_penalty(&self) -> bool {
        self.improvement() < 0.0
    }
}

/// Counts of candidate appearances and selections per (client, relay)
/// pair — the basis of all three utilization statistics in the paper.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UtilizationTracker {
    appeared: BTreeMap<(NodeId, NodeId), u64>,
    chosen: BTreeMap<(NodeId, NodeId), u64>,
}

impl UtilizationTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        UtilizationTracker::default()
    }

    /// Ingests one transfer record: every candidate "appeared"; the
    /// selected relay (if indirect) was "chosen".
    pub fn observe(&mut self, rec: &TransferRecord) {
        for &via in &rec.candidates {
            *self.appeared.entry((rec.client, via)).or_insert(0) += 1;
        }
        if let Some(via) = rec.selected.via() {
            *self.chosen.entry((rec.client, via)).or_insert(0) += 1;
        }
    }

    /// Per-client utilization of a relay: the fraction of transfers in
    /// which `via` was available to `client` and was actually chosen
    /// (§4.3's definition; Table II/III). `None` if never a candidate.
    pub fn utilization(&self, client: NodeId, via: NodeId) -> Option<f64> {
        let appeared = *self.appeared.get(&(client, via))?;
        if appeared == 0 {
            return None;
        }
        let chosen = self.chosen.get(&(client, via)).copied().unwrap_or(0);
        Some(chosen as f64 / appeared as f64)
    }

    /// Aggregate utilization of a relay over all clients (§3.4's
    /// definition; Fig 5). `None` if never a candidate anywhere.
    pub fn total_utilization(&self, via: NodeId) -> Option<f64> {
        let appeared: u64 = self
            .appeared
            .iter()
            .filter(|((_, v), _)| *v == via)
            .map(|(_, &n)| n)
            .sum();
        if appeared == 0 {
            return None;
        }
        let chosen: u64 = self
            .chosen
            .iter()
            .filter(|((_, v), _)| *v == via)
            .map(|(_, &n)| n)
            .sum();
        Some(chosen as f64 / appeared as f64)
    }

    /// Per-client utilizations of a client's relays, sorted descending —
    /// Table II's "top three intermediate nodes" comes from the head of
    /// this list.
    pub fn top_for_client(&self, client: NodeId) -> Vec<(NodeId, f64)> {
        let mut out: Vec<(NodeId, f64)> = self
            .appeared
            .keys()
            .filter(|(c, _)| *c == client)
            .filter_map(|&(_, v)| self.utilization(client, v).map(|u| (v, u)))
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        out
    }

    /// All relays that ever appeared, sorted by id.
    pub fn relays(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.appeared.keys().map(|&(_, via)| via).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Number of times `via` was selected by `client`.
    pub fn chosen_count(&self, client: NodeId, via: NodeId) -> u64 {
        self.chosen.get(&(client, via)).copied().unwrap_or(0)
    }

    /// Number of times `via` appeared as a candidate for `client`.
    pub fn appeared_count(&self, client: NodeId, via: NodeId) -> u64 {
        self.appeared.get(&(client, via)).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(i: u32) -> NodeId {
        NodeId(i)
    }

    fn rec(
        client: u32,
        via: Option<u32>,
        candidates: &[u32],
        sel: f64,
        dir: f64,
    ) -> TransferRecord {
        let c = node(client);
        let s = node(99);
        TransferRecord {
            client: c,
            server: s,
            started: SimTime::ZERO,
            file_bytes: 2_000_000,
            selected: match via {
                None => PathSpec::direct(c, s),
                Some(v) => PathSpec::indirect(c, s, node(v)),
            },
            candidates: candidates.iter().map(|&i| node(i)).collect(),
            direct_throughput: dir,
            selected_throughput: sel,
            probe_throughput: sel,
            selected_path_rate: sel,
            probe_timeout: false,
            failovers: 0,
            stall_ms: 0,
            abandoned: false,
        }
    }

    #[test]
    fn improvement_math() {
        assert!((improvement(2.0, 1.0) - 1.0).abs() < 1e-12); // +100%
        assert!((improvement(0.5, 1.0) + 0.5).abs() < 1e-12); // -50%
        assert!(improvement(1.0, 0.0).is_nan());
        let r = rec(1, Some(2), &[2], 1.49e5, 1.0e5);
        assert!((r.improvement_pct() - 49.0).abs() < 1e-9);
        assert!(!r.is_penalty());
        assert!(rec(1, Some(2), &[2], 0.5e5, 1.0e5).is_penalty());
    }

    #[test]
    fn utilization_counting() {
        let mut u = UtilizationTracker::new();
        // Relay 2 appears 4 times for client 1, chosen twice.
        u.observe(&rec(1, Some(2), &[2, 3], 2.0, 1.0));
        u.observe(&rec(1, None, &[2, 3], 1.0, 1.0));
        u.observe(&rec(1, Some(2), &[2], 2.0, 1.0));
        u.observe(&rec(1, Some(3), &[2, 3], 2.0, 1.0));
        assert_eq!(u.utilization(node(1), node(2)), Some(0.5));
        assert_eq!(u.utilization(node(1), node(3)), Some(1.0 / 3.0));
        assert_eq!(u.utilization(node(1), node(4)), None);
        assert_eq!(u.appeared_count(node(1), node(2)), 4);
        assert_eq!(u.chosen_count(node(1), node(2)), 2);
    }

    #[test]
    fn total_utilization_aggregates_clients() {
        let mut u = UtilizationTracker::new();
        u.observe(&rec(1, Some(5), &[5], 2.0, 1.0));
        u.observe(&rec(2, None, &[5], 1.0, 1.0));
        // Relay 5: appeared twice (once per client), chosen once → 50%.
        assert_eq!(u.total_utilization(node(5)), Some(0.5));
        assert_eq!(u.total_utilization(node(6)), None);
    }

    #[test]
    fn top_for_client_sorts_descending() {
        let mut u = UtilizationTracker::new();
        u.observe(&rec(1, Some(2), &[2, 3, 4], 2.0, 1.0));
        u.observe(&rec(1, Some(2), &[2, 3, 4], 2.0, 1.0));
        u.observe(&rec(1, Some(3), &[2, 3, 4], 2.0, 1.0));
        let top = u.top_for_client(node(1));
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].0, node(2));
        assert!((top[0].1 - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(top[1].0, node(3));
        assert_eq!(top[2], (node(4), 0.0));
    }

    #[test]
    fn relays_lists_unique_sorted() {
        let mut u = UtilizationTracker::new();
        u.observe(&rec(1, None, &[7, 3], 1.0, 1.0));
        u.observe(&rec(2, None, &[3], 1.0, 1.0));
        assert_eq!(u.relays(), vec![node(3), node(7)]);
    }
}
