//! Path specifications: direct vs indirect-via-a-chain-of-relays.
//!
//! The paper's protocol probes one intermediate at a time, but the
//! policy plane (`ir-policy`) generalizes candidates to *hop chains*:
//! `client -> r1 -> r2 -> server`. A [`PathSpec`] therefore carries up
//! to [`MAX_HOPS`] intermediates inline — it stays `Copy` (sessions
//! pass paths by value throughout) and one-hop specs behave exactly as
//! the old `via: Option<NodeId>` encoding did.

use ir_simnet::topology::{NodeId, Route, Topology};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum number of intermediate hops a [`PathSpec`] can carry.
///
/// Chains longer than this lose to their own relay-processing latency
/// long before they win a probe race (Kedia et al. observe the overlay
/// detour benefit collapsing past a few hops), so the cap is a
/// protocol constant, not a tunable.
pub const MAX_HOPS: usize = 3;

/// Filler for unused hop slots, so derived `Eq`/`Hash`/`Ord` only see
/// normalized values. Never a valid node: topologies are far smaller.
const FILL: NodeId = NodeId(u32::MAX);

/// An end-to-end path choice between a client and a server: the direct
/// Internet path, or a detour through 1..=[`MAX_HOPS`] overlay relays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PathSpec {
    /// The downloading client.
    pub client: NodeId,
    /// The origin server.
    pub server: NodeId,
    /// Number of intermediate hops in use (0 = direct).
    pub(crate) hop_len: u8,
    /// Intermediate hops, in traversal order; slots `hop_len..` hold
    /// [`FILL`] so the derived comparisons stay canonical.
    pub(crate) hops: [NodeId; MAX_HOPS],
}

impl PathSpec {
    /// The direct path.
    pub fn direct(client: NodeId, server: NodeId) -> Self {
        PathSpec {
            client,
            server,
            hop_len: 0,
            hops: [FILL; MAX_HOPS],
        }
    }

    /// An indirect path through the single relay `via`.
    pub fn indirect(client: NodeId, server: NodeId, via: NodeId) -> Self {
        PathSpec::chain(client, server, &[via])
    }

    /// An indirect path through the given relay chain, in traversal
    /// order. An empty chain is the direct path.
    ///
    /// # Panics
    ///
    /// Panics if the chain is longer than [`MAX_HOPS`], revisits a
    /// relay, or routes through either endpoint. Policies emitting
    /// untrusted node lists should sanitize first (`ir-policy` has the
    /// shared helper).
    pub fn chain(client: NodeId, server: NodeId, chain: &[NodeId]) -> Self {
        assert!(
            chain.len() <= MAX_HOPS,
            "chain of {} exceeds MAX_HOPS={MAX_HOPS}",
            chain.len()
        );
        let mut hops = [FILL; MAX_HOPS];
        for (i, &hop) in chain.iter().enumerate() {
            assert_ne!(hop, client, "relay cannot be the client");
            assert_ne!(hop, server, "relay cannot be the server");
            assert!(
                !chain[..i].contains(&hop),
                "duplicate relay {hop:?} in chain"
            );
            hops[i] = hop;
        }
        PathSpec {
            client,
            server,
            hop_len: chain.len() as u8,
            hops,
        }
    }

    /// The intermediate hops, in traversal order (empty for the direct
    /// path).
    pub fn hops(&self) -> &[NodeId] {
        &self.hops[..self.hop_len as usize]
    }

    /// Number of intermediate hops (0 = direct).
    pub fn hop_count(&self) -> usize {
        self.hop_len as usize
    }

    /// The *first* intermediate, if any — the single relay for one-hop
    /// paths. Utilization accounting credits this node: it is the relay
    /// the client contacted, whatever the chain does afterwards.
    pub fn via(&self) -> Option<NodeId> {
        self.hops().first().copied()
    }

    /// True if this is an indirect path.
    pub fn is_indirect(&self) -> bool {
        self.hop_len > 0
    }

    /// The full node sequence `client, hops…, server`.
    fn node_seq(&self) -> Vec<NodeId> {
        let mut seq = Vec::with_capacity(self.hop_count() + 2);
        seq.push(self.client);
        seq.extend_from_slice(self.hops());
        seq.push(self.server);
        seq
    }

    /// Resolves this spec to a concrete route in `topo`.
    ///
    /// Returns `None` if the required links are missing from the
    /// topology.
    pub fn resolve(&self, topo: &Topology) -> Option<Route> {
        topo.route(&self.node_seq())
    }

    /// Human-readable description using node names from `topo`.
    pub fn describe(&self, topo: &Topology) -> String {
        let c = &topo.node(self.client).name;
        let s = &topo.node(self.server).name;
        if self.hop_len == 0 {
            format!("{c} -> {s} (direct)")
        } else {
            let mids: Vec<&str> = self
                .hops()
                .iter()
                .map(|&v| topo.node(v).name.as_str())
                .collect();
            format!("{c} -> {} -> {s}", mids.join(" -> "))
        }
    }
}

impl fmt::Display for PathSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.hop_len == 0 {
            write!(f, "direct({}->{})", self.client.0, self.server.0)
        } else {
            write!(f, "via({}", self.client.0)?;
            for v in self.hops() {
                write!(f, "->{}", v.0)?;
            }
            write!(f, "->{})", self.server.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_simnet::time::SimDuration;
    use ir_simnet::topology::NodeKind;

    fn topo() -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let c = t.add_node("Berlin", NodeKind::Client);
        let v = t.add_node("Texas", NodeKind::Intermediate);
        let s = t.add_node("eBay", NodeKind::Server);
        t.add_link(c, s, SimDuration::from_millis(80));
        t.add_link(c, v, SimDuration::from_millis(60));
        t.add_link(v, s, SimDuration::from_millis(15));
        (t, c, v, s)
    }

    /// Like [`topo`], plus a second relay wired `v -> w -> s`.
    fn topo2() -> (Topology, NodeId, NodeId, NodeId, NodeId) {
        let (mut t, c, v, s) = topo();
        let w = t.add_node("Utah", NodeKind::Intermediate);
        t.add_link(v, w, SimDuration::from_millis(5));
        t.add_link(w, s, SimDuration::from_millis(5));
        (t, c, v, w, s)
    }

    #[test]
    fn direct_and_indirect_resolve() {
        let (t, c, v, s) = topo();
        let d = PathSpec::direct(c, s);
        assert!(!d.is_indirect());
        assert_eq!(d.resolve(&t).unwrap().len(), 1);
        let i = PathSpec::indirect(c, s, v);
        assert!(i.is_indirect());
        assert_eq!(i.resolve(&t).unwrap().len(), 2);
    }

    #[test]
    fn missing_link_resolves_none() {
        let (t, c, _, s) = topo();
        // s -> c has no link.
        let back = PathSpec::direct(s, c);
        assert!(back.resolve(&t).is_none());
    }

    #[test]
    fn describe_uses_names() {
        let (t, c, v, s) = topo();
        assert_eq!(
            PathSpec::direct(c, s).describe(&t),
            "Berlin -> eBay (direct)"
        );
        assert_eq!(
            PathSpec::indirect(c, s, v).describe(&t),
            "Berlin -> Texas -> eBay"
        );
    }

    #[test]
    fn two_hop_chain_resolves_and_describes() {
        let (t, c, v, w, s) = topo2();
        let p = PathSpec::chain(c, s, &[v, w]);
        assert_eq!(p.hop_count(), 2);
        assert_eq!(p.hops(), &[v, w]);
        assert_eq!(p.via(), Some(v), "via() credits the first hop");
        assert_eq!(p.resolve(&t).unwrap().len(), 3);
        assert_eq!(p.describe(&t), "Berlin -> Texas -> Utah -> eBay");
        assert_eq!(
            p.to_string(),
            format!("via({}->{}->{}->{})", c.0, v.0, w.0, s.0)
        );
        // The reversed chain has no v <- w link.
        assert!(PathSpec::chain(c, s, &[w, v]).resolve(&t).is_none());
    }

    #[test]
    fn empty_chain_is_direct() {
        let (_, c, _, s) = topo();
        assert_eq!(PathSpec::chain(c, s, &[]), PathSpec::direct(c, s));
        assert_eq!(PathSpec::direct(c, s).via(), None);
        assert_eq!(PathSpec::direct(c, s).hops(), &[] as &[NodeId]);
    }

    #[test]
    fn one_hop_chain_equals_indirect() {
        let (_, c, v, s) = topo();
        assert_eq!(PathSpec::chain(c, s, &[v]), PathSpec::indirect(c, s, v));
    }

    #[test]
    #[should_panic(expected = "relay cannot be the client")]
    fn relay_cannot_be_endpoint() {
        let (_, c, _, s) = topo();
        PathSpec::indirect(c, s, c);
    }

    #[test]
    #[should_panic(expected = "duplicate relay")]
    fn chain_rejects_revisits() {
        let (_, c, v, s) = topo();
        PathSpec::chain(c, s, &[v, v]);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_HOPS")]
    fn chain_rejects_overlong() {
        let (_, c, _, s) = topo();
        let hops: Vec<NodeId> = (10..10 + MAX_HOPS as u32 + 1).map(NodeId).collect();
        PathSpec::chain(c, s, &hops);
    }
}
