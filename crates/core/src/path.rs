//! Path specifications: direct vs indirect-via-a-relay.

use ir_simnet::topology::{NodeId, Route, Topology};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An end-to-end path choice between a client and a server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PathSpec {
    /// The downloading client.
    pub client: NodeId,
    /// The origin server.
    pub server: NodeId,
    /// `None` for the default Internet path; `Some(relay)` to route via
    /// an intermediate overlay node.
    pub via: Option<NodeId>,
}

impl PathSpec {
    /// The direct path.
    pub fn direct(client: NodeId, server: NodeId) -> Self {
        PathSpec {
            client,
            server,
            via: None,
        }
    }

    /// An indirect path through `via`.
    pub fn indirect(client: NodeId, server: NodeId, via: NodeId) -> Self {
        assert_ne!(via, client, "relay cannot be the client");
        assert_ne!(via, server, "relay cannot be the server");
        PathSpec {
            client,
            server,
            via: Some(via),
        }
    }

    /// True if this is an indirect path.
    pub fn is_indirect(&self) -> bool {
        self.via.is_some()
    }

    /// Resolves this spec to a concrete route in `topo`.
    ///
    /// Returns `None` if the required links are missing from the
    /// topology.
    pub fn resolve(&self, topo: &Topology) -> Option<Route> {
        match self.via {
            None => topo.route(&[self.client, self.server]),
            Some(via) => topo.route(&[self.client, via, self.server]),
        }
    }

    /// Human-readable description using node names from `topo`.
    pub fn describe(&self, topo: &Topology) -> String {
        let c = &topo.node(self.client).name;
        let s = &topo.node(self.server).name;
        match self.via {
            None => format!("{c} -> {s} (direct)"),
            Some(v) => format!("{c} -> {} -> {s}", topo.node(v).name),
        }
    }
}

impl fmt::Display for PathSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.via {
            None => write!(f, "direct({}->{})", self.client.0, self.server.0),
            Some(v) => write!(f, "via({}->{}->{})", self.client.0, v.0, self.server.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_simnet::time::SimDuration;
    use ir_simnet::topology::NodeKind;

    fn topo() -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let c = t.add_node("Berlin", NodeKind::Client);
        let v = t.add_node("Texas", NodeKind::Intermediate);
        let s = t.add_node("eBay", NodeKind::Server);
        t.add_link(c, s, SimDuration::from_millis(80));
        t.add_link(c, v, SimDuration::from_millis(60));
        t.add_link(v, s, SimDuration::from_millis(15));
        (t, c, v, s)
    }

    #[test]
    fn direct_and_indirect_resolve() {
        let (t, c, v, s) = topo();
        let d = PathSpec::direct(c, s);
        assert!(!d.is_indirect());
        assert_eq!(d.resolve(&t).unwrap().len(), 1);
        let i = PathSpec::indirect(c, s, v);
        assert!(i.is_indirect());
        assert_eq!(i.resolve(&t).unwrap().len(), 2);
    }

    #[test]
    fn missing_link_resolves_none() {
        let (t, c, _, s) = topo();
        // s -> c has no link.
        let back = PathSpec::direct(s, c);
        assert!(back.resolve(&t).is_none());
    }

    #[test]
    fn describe_uses_names() {
        let (t, c, v, s) = topo();
        assert_eq!(
            PathSpec::direct(c, s).describe(&t),
            "Berlin -> eBay (direct)"
        );
        assert_eq!(
            PathSpec::indirect(c, s, v).describe(&t),
            "Berlin -> Texas -> eBay"
        );
    }

    #[test]
    #[should_panic(expected = "relay cannot be the client")]
    fn relay_cannot_be_endpoint() {
        let (_, c, _, s) = topo();
        PathSpec::indirect(c, s, c);
    }
}
