//! Transfer-session orchestration: the paper's §2.1 protocol.
//!
//! One session = one experiment iteration:
//!
//! 1. The policy picks candidate relays (possibly none).
//! 2. A **control** transfer of the whole file starts on the direct
//!    path (the paper's second client process).
//! 3. The **selecting** process issues range probes for the first
//!    `x` bytes over the direct path and every candidate indirect path.
//! 4. The winner — first probe to finish (or best predicted rate in
//!    measure-all mode) — carries the remaining `n − x` bytes.
//! 5. Improvement = selected-process throughput vs control throughput.

use crate::path::PathSpec;
use crate::policy::{SelectCtx, SelectionPolicy};
use crate::predictor::Predictor;
use crate::record::TransferRecord;
use crate::transport::{Handle, Timing, Transport};
pub use ir_simnet::sim::EngineMode;
use ir_simnet::time::SimDuration;
use ir_simnet::topology::NodeId;
use ir_telemetry::trace::{Event, EventKind};
use ir_telemetry::Telemetry;

/// How the probe phase decides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeMode {
    /// First probe to deliver all `x` bytes wins; losers are cancelled
    /// at the decision instant (§2.1: "If the client receives the
    /// requested data completely through the indirect path first…").
    FirstToFinish,
    /// Wait for every probe, then pick the best predicted rate (§4.1:
    /// "perform n preliminary download tests and see which produces the
    /// best throughput").
    MeasureAll,
}

/// How the control (direct-only) process runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlMode {
    /// Control shares the network with the selecting process — the
    /// §2.2 methodology ("Both client processes execute concurrently").
    Concurrent,
    /// Control runs on a forked replica with identical conditions — the
    /// §4.2 ideal ("closely in time … but not so closely that they
    /// interfere"). Falls back to `Concurrent` if the transport cannot
    /// fork.
    Forked,
}

/// Mid-transfer failover parameters for the remainder phase.
///
/// The paper's protocol has no failure handling — a dead selected path
/// simply times out the whole session. With failover enabled, the
/// remainder phase watches for stalls: a window with zero delivered
/// bytes triggers retries on the same path (exponential backoff), and
/// exhausted retries trigger a switch to the best surviving candidate
/// (decided by a fresh probe race). Everything is recorded in the
/// [`TransferRecord`] (`failovers`, `stall_ms`, `abandoned`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverConfig {
    /// A remainder attempt that delivers zero bytes for this long is
    /// declared stalled.
    pub stall_timeout: SimDuration,
    /// Stalled-path retries (fresh connection, same path) before
    /// failing over to another candidate.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per retry.
    pub initial_backoff: SimDuration,
}

impl FailoverConfig {
    /// Defaults used by the fault-plane experiments: 30 s stall window,
    /// 2 retries, 1 s initial backoff.
    pub fn paper_defaults() -> Self {
        FailoverConfig {
            stall_timeout: SimDuration::from_secs(30),
            max_retries: 2,
            initial_backoff: SimDuration::from_secs(1),
        }
    }

    /// Validates invariants.
    pub fn validate(&self) {
        assert!(!self.stall_timeout.is_zero(), "zero stall timeout");
        assert!(!self.initial_backoff.is_zero(), "zero backoff");
    }
}

/// Chunk-rebalancing parameters for [`SessionMode::Striped`].
///
/// The striper (the `ir-stripe` crate) keeps a per-path EWMA rate
/// estimate seeded from the probe race. A free path steals the
/// straggler chunk of a path whose observed rate has drifted below its
/// own by more than `drift_ratio`, and a path that delivers zero bytes
/// for a whole `stall_window` is declared dead and its chunk is
/// reassigned (the per-chunk generalization of [`FailoverConfig`]'s
/// stall→re-race machinery).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalanceConfig {
    /// A free path steals a straggler's remaining bytes only when its
    /// EWMA rate exceeds the straggler's observed rate by this factor.
    pub drift_ratio: f64,
    /// A chunk that delivers zero bytes for this long kills its path.
    pub stall_window: SimDuration,
    /// EWMA smoothing for per-path rate estimates (0 < alpha <= 1).
    pub alpha: f64,
}

impl RebalanceConfig {
    /// Defaults used by the striping experiments: steal past 2× drift,
    /// 30 s stall window, EWMA alpha 0.3.
    pub fn paper_defaults() -> Self {
        RebalanceConfig {
            drift_ratio: 2.0,
            stall_window: SimDuration::from_secs(30),
            alpha: 0.3,
        }
    }

    /// Validates invariants.
    pub fn validate(&self) {
        assert!(
            self.drift_ratio.is_finite() && self.drift_ratio > 1.0,
            "drift ratio must exceed 1 ({})",
            self.drift_ratio
        );
        assert!(!self.stall_window.is_zero(), "zero stall window");
        assert!(
            self.alpha > 0.0 && self.alpha <= 1.0,
            "alpha out of (0, 1] ({})",
            self.alpha
        );
    }
}

/// How the selecting process carries the remainder after the probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SessionMode {
    /// The paper's protocol: the probe winner carries the whole
    /// remainder, winner-take-all. This module implements it.
    Racing,
    /// mHTTP-style multi-source striping: the remainder is partitioned
    /// into `chunks` ranges fetched concurrently over the direct path
    /// plus the best `k` indirect candidates, rebalanced per
    /// `rebalance`. Executed by the `ir-stripe` crate's runner (this
    /// crate's runner is the racing path); with one chunk and `k = 1`
    /// the striper's record is bit-identical to [`SessionMode::Racing`]
    /// on a healthy network.
    Striped {
        /// Ranges the remainder is split into (>= 1).
        chunks: u32,
        /// Indirect candidates striped over, capping the probe set
        /// (>= 1; the `PathSelector` plane's `best_k` feeds this).
        k: u32,
        /// Straggler-steal and stall-death knobs.
        rebalance: RebalanceConfig,
    },
}

impl SessionMode {
    /// Validates invariants.
    pub fn validate(&self) {
        if let SessionMode::Striped {
            chunks,
            k,
            rebalance,
        } = self
        {
            assert!(*chunks >= 1, "zero chunks");
            assert!(*k >= 1, "zero stripe width");
            rebalance.validate();
        }
    }
}

/// Session parameters.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// Probe size x (bytes). The paper uses 100 KB.
    pub probe_bytes: u64,
    /// File size n (bytes). The paper uses ≥ 2 MB.
    pub file_bytes: u64,
    /// Probe decision mode.
    pub probe_mode: ProbeMode,
    /// Control process mode.
    pub control: ControlMode,
    /// Per-phase timeout.
    pub horizon: SimDuration,
    /// Mid-transfer failover for the remainder phase. `None` (the
    /// paper's protocol) keeps the original single-attempt behavior
    /// bit-for-bit.
    pub failover: Option<FailoverConfig>,
    /// Fair-share engine the simulated transport runs sessions on.
    /// Every mode is bit-identical (enforced by the cross-engine
    /// differential suite); this knob trades wall-clock, not results.
    pub engine: EngineMode,
    /// Remainder strategy. [`SessionMode::Racing`] (the paper's
    /// protocol) is what this module's runners execute; striped
    /// configs are dispatched by the `ir-stripe` crate's runner, which
    /// delegates back here for `Racing`.
    pub mode: SessionMode,
}

impl SessionConfig {
    /// The paper's defaults: x = 100 KB, n = 2 MB, first-to-finish,
    /// concurrent control, 10-minute horizon, no failover.
    pub fn paper_defaults() -> Self {
        SessionConfig {
            probe_bytes: 100 * 1024,
            file_bytes: 2 * 1024 * 1024,
            probe_mode: ProbeMode::FirstToFinish,
            control: ControlMode::Concurrent,
            horizon: SimDuration::from_secs(600),
            failover: None,
            engine: EngineMode::Incremental,
            mode: SessionMode::Racing,
        }
    }

    /// Validates invariants.
    pub fn validate(&self) {
        assert!(self.probe_bytes > 0, "zero probe");
        assert!(
            self.file_bytes > self.probe_bytes,
            "file must exceed the probe ({} <= {})",
            self.file_bytes,
            self.probe_bytes
        );
        assert!(!self.horizon.is_zero(), "zero horizon");
        if let Some(fo) = &self.failover {
            fo.validate();
        }
        self.mode.validate();
    }
}

enum Control {
    Live(Handle),
    Forked(Box<dyn Transport>, Handle),
}

/// Picks the `MeasureAll` winner from per-path `(probe_rate,
/// predicted)` outcomes (`None` = the probe never finished inside the
/// horizon).
///
/// An indirect candidate whose probe rate or prediction is zero, NaN,
/// or infinite can never win: indirection has to be a *measured*
/// upgrade over the direct default, and a dead probe measures nothing.
/// Among the survivors the strictly highest prediction wins; a tie
/// keeps the earliest path, and the direct path probes first, so
/// direct wins prediction ties.
///
/// Public because `ir-stripe`'s runner replays the identical probe
/// phase: both modes must make the same decision from the same
/// measurements.
pub fn select_measure_all(
    paths: &[PathSpec],
    outcomes: &[Option<(f64, f64)>],
) -> Option<(PathSpec, f64)> {
    // (path, score, probe_rate); a non-finite direct prediction ranks
    // below every real measurement but still beats "nothing finished".
    let mut best: Option<(PathSpec, f64, f64)> = None;
    for (i, outcome) in outcomes.iter().enumerate() {
        let Some((rate, predicted)) = *outcome else {
            continue;
        };
        if paths[i].is_indirect()
            && !(rate.is_finite() && rate > 0.0 && predicted.is_finite() && predicted > 0.0)
        {
            continue;
        }
        let score = if predicted.is_finite() {
            predicted
        } else {
            f64::NEG_INFINITY
        };
        let wins = match &best {
            None => true,
            Some((_, best_score, _)) => score > *best_score,
        };
        if wins {
            best = Some((paths[i], score, rate));
        }
    }
    best.map(|(p, _, rate)| (p, rate))
}

/// Runs one session; returns the full record (and feeds it back to the
/// policy and predictor).
#[allow(clippy::too_many_arguments)] // mirrors the protocol's free parameters
pub fn run_session(
    transport: &mut dyn Transport,
    policy: &mut dyn SelectionPolicy,
    predictor: &mut dyn Predictor,
    client: NodeId,
    server: NodeId,
    full_set: &[NodeId],
    transfer_index: u64,
    cfg: &SessionConfig,
) -> TransferRecord {
    run_session_traced(
        transport,
        policy,
        predictor,
        client,
        server,
        full_set,
        transfer_index,
        cfg,
        None,
    )
}

/// [`run_session`] with an optional telemetry handle. With `None` this
/// is exactly `run_session`; with `Some` it additionally emits
/// session-layer events (probe race, selection decision, fallback) and
/// metrics. Telemetry is strictly observational — the returned record
/// is identical either way.
#[allow(clippy::too_many_arguments)] // traced twin of run_session; same signature
pub fn run_session_traced(
    transport: &mut dyn Transport,
    policy: &mut dyn SelectionPolicy,
    predictor: &mut dyn Predictor,
    client: NodeId,
    server: NodeId,
    full_set: &[NodeId],
    transfer_index: u64,
    cfg: &SessionConfig,
    tel: Option<&Telemetry>,
) -> TransferRecord {
    let ctx = SelectCtx {
        client,
        server,
        full_set,
        transfer_index,
    };
    let candidates = policy.candidates(&ctx);
    let paths: Vec<PathSpec> = candidates
        .iter()
        .map(|&via| PathSpec::indirect(client, server, via))
        .collect();
    let record = run_paths_session_traced(
        transport,
        predictor,
        client,
        server,
        &paths,
        candidates,
        transfer_index,
        cfg,
        tel,
    );
    policy.observe(&record);
    record
}

/// The path-plane session runner: races the direct path against an
/// explicit, ordered list of indirect candidate paths (1-hop or
/// multi-hop chains). [`run_session_traced`] is a thin wrapper that
/// maps a [`SelectionPolicy`]'s relay candidates to 1-hop paths;
/// `ir-policy` selectors call this directly with arbitrary chains.
///
/// `candidates` is recorded verbatim in the returned
/// [`TransferRecord`] (the paper's "random set" bookkeeping). Paths
/// the transport cannot resolve are dropped from the race — counted in
/// the `path_unresolvable` metric and traced per path — rather than
/// silently skipped or panicked on.
#[allow(clippy::too_many_arguments)] // multi-hop twin of run_session_traced; same signature
pub fn run_paths_session_traced(
    transport: &mut dyn Transport,
    predictor: &mut dyn Predictor,
    client: NodeId,
    server: NodeId,
    indirect_paths: &[PathSpec],
    candidates: Vec<NodeId>,
    transfer_index: u64,
    cfg: &SessionConfig,
    tel: Option<&Telemetry>,
) -> TransferRecord {
    cfg.validate();
    let direct = PathSpec::direct(client, server);
    let t0 = transport.now();
    if let Some(tel) = tel {
        tel.metrics.counter("session_started", vec![]).inc();
        tel.tracer.record(
            Event::new(EventKind::SessionStart, t0.as_micros(), transfer_index)
                .with_u64("client", client.0 as u64)
                .with_u64("server", server.0 as u64)
                .with_u64("candidates", indirect_paths.len() as u64),
        );
    }

    // Drop candidate paths the transport cannot carry (missing links).
    // The paper's 1-hop star always resolves; multi-hop chains from
    // generative policies may not, and a silent skip would corrupt the
    // probe-overhead accounting of tournament runs.
    let candidate_paths: Vec<PathSpec> = indirect_paths
        .iter()
        .filter(|p| {
            let ok = transport.resolvable(p);
            if !ok {
                if let Some(tel) = tel {
                    tel.metrics.counter("path_unresolvable", vec![]).inc();
                    tel.tracer.record(
                        Event::new(
                            EventKind::PathUnresolvable,
                            transport.now().as_micros(),
                            transfer_index,
                        )
                        .with_str("path", p.to_string()),
                    );
                }
            }
            ok
        })
        .copied()
        .collect();

    // Control process: whole file on the direct path.
    let control = match cfg.control {
        ControlMode::Forked => match transport.fork() {
            Some(mut forked) => {
                let h = forked.begin(&direct, cfg.file_bytes);
                Control::Forked(forked, h)
            }
            None => Control::Live(transport.begin(&direct, cfg.file_bytes)),
        },
        ControlMode::Concurrent => Control::Live(transport.begin(&direct, cfg.file_bytes)),
    };

    // Selecting process.
    let (
        selected,
        probe_throughput,
        path_rate,
        probe_timeout,
        finished_ok,
        failovers,
        stall_ms,
        abandoned,
    ) = if candidate_paths.is_empty() {
        // Direct-only: no probe phase; the whole file goes direct.
        let h = transport.begin(&direct, cfg.file_bytes);
        let t = transport.finish(h, cfg.horizon);
        let rate = t.map(|t| t.throughput()).unwrap_or(f64::NAN);
        (direct, f64::NAN, rate, false, t.is_some(), 0, 0, false)
    } else {
        let paths: Vec<PathSpec> = std::iter::once(direct)
            .chain(candidate_paths.iter().copied())
            .collect();
        let handles: Vec<Handle> = paths
            .iter()
            .map(|p| transport.begin(p, cfg.probe_bytes))
            .collect();
        if let Some(tel) = tel {
            tel.metrics.counter("session_probe_races", vec![]).inc();
            tel.tracer.record(
                Event::new(
                    EventKind::ProbeStart,
                    transport.now().as_micros(),
                    transfer_index,
                )
                .with_u64("paths", handles.len() as u64)
                .with_u64("probe_bytes", cfg.probe_bytes),
            );
        }

        let decision = match cfg.probe_mode {
            ProbeMode::FirstToFinish => match transport.race(&handles, cfg.horizon) {
                Some(win) => {
                    for (i, &h) in handles.iter().enumerate() {
                        if i != win.index {
                            transport.cancel(h);
                        }
                    }
                    Some((paths[win.index], win.timing.throughput()))
                }
                None => None,
            },
            ProbeMode::MeasureAll => {
                let timings: Vec<Option<Timing>> = handles
                    .iter()
                    .map(|&h| transport.finish(h, cfg.horizon))
                    .collect();
                let outcomes: Vec<Option<(f64, f64)>> = timings
                    .iter()
                    .enumerate()
                    .map(|(i, t)| {
                        t.as_ref().map(|t| {
                            let rate = t.throughput();
                            (rate, predictor.predict(&paths[i], rate))
                        })
                    })
                    .collect();
                select_measure_all(&paths, &outcomes)
            }
        };

        match decision {
            Some((path, probe_rate)) => {
                if let Some(tel) = tel {
                    let now_us = transport.now().as_micros();
                    let mut won = Event::new(EventKind::ProbeWon, now_us, transfer_index)
                        .with_str(
                            "path",
                            if path.is_indirect() {
                                "indirect"
                            } else {
                                "direct"
                            },
                        )
                        .with_f64("probe_rate", probe_rate);
                    if let Some(via) = path.via() {
                        won = won.with_u64("via", via.0 as u64);
                    }
                    tel.tracer.record(won);
                    if let Some(via) = path.via() {
                        tel.metrics.counter("session_path_switches", vec![]).inc();
                        tel.tracer.record(
                            Event::new(EventKind::PathSwitch, now_us, transfer_index)
                                .with_u64("via", via.0 as u64),
                        );
                    }
                }
                match cfg.failover {
                    None => {
                        // The remainder rides the winning probe's warm
                        // connection (another Range request, §2.1).
                        let rem = transport.begin_warm(&path, cfg.file_bytes - cfg.probe_bytes);
                        let (ok, rate) = match transport.finish(rem, cfg.horizon) {
                            Some(t) => {
                                // Feed the realized remainder rate back.
                                predictor.observe(&path, t.throughput());
                                (true, t.throughput())
                            }
                            None => (false, f64::NAN),
                        };
                        (path, probe_rate, rate, false, ok, 0, 0, false)
                    }
                    Some(fo) => {
                        let out = run_remainder_failover(
                            transport,
                            predictor,
                            path,
                            &paths,
                            cfg,
                            &fo,
                            transfer_index,
                            tel,
                        );
                        (
                            out.path,
                            probe_rate,
                            out.rate,
                            false,
                            out.finished,
                            out.failovers,
                            out.stall_ms,
                            out.abandoned,
                        )
                    }
                }
            }
            None => {
                // Probe race timed out entirely; cancel everything and
                // fall back to a direct transfer of the whole file.
                for &h in &handles {
                    transport.cancel(h);
                }
                if let Some(tel) = tel {
                    let now_us = transport.now().as_micros();
                    tel.metrics.counter("session_probe_timeouts", vec![]).inc();
                    tel.tracer
                        .record(Event::new(EventKind::ProbeTimeout, now_us, transfer_index));
                    tel.tracer.record(
                        Event::new(EventKind::Retry, now_us, transfer_index)
                            .with_str("fallback", "direct"),
                    );
                }
                let h = transport.begin(&direct, cfg.file_bytes);
                let ok = transport.finish(h, cfg.horizon).is_some();
                (direct, f64::NAN, f64::NAN, true, ok, 0, 0, false)
            }
        }
    };

    // The selecting process's end-to-end throughput: whole file over
    // wall time since t0 (probe + decision + remainder). When the final
    // phase timed out, credit only what the horizon allowed — a
    // throughput of ~0 rather than a fabricated number.
    let t_end = transport.now();
    let wall = (t_end - t0).as_secs_f64();
    let selected_throughput = if finished_ok && wall > 0.0 {
        cfg.file_bytes as f64 / wall
    } else {
        0.0
    };

    // Collect the control result. Give it the same total horizon the
    // selecting process had (generous: two phases).
    let control_horizon = SimDuration::from_micros(cfg.horizon.as_micros() * 2);
    let direct_throughput = match control {
        Control::Live(h) => transport
            .finish(h, control_horizon)
            .map(|t| t.throughput())
            .unwrap_or(0.0),
        Control::Forked(mut forked, h) => forked
            .finish(h, control_horizon)
            .map(|t| t.throughput())
            .unwrap_or(0.0),
    };

    let record = TransferRecord {
        client,
        server,
        started: t0,
        file_bytes: cfg.file_bytes,
        selected,
        candidates,
        direct_throughput,
        selected_throughput,
        probe_throughput,
        selected_path_rate: path_rate,
        probe_timeout,
        failovers,
        stall_ms,
        abandoned,
    };
    if let Some(tel) = tel {
        let wall_us = (t_end - t0).as_micros();
        tel.metrics.counter("session_completed", vec![]).inc();
        tel.metrics
            .histogram("session_wall_us", vec![])
            .record(wall_us);
        tel.tracer.record(
            Event::span(
                EventKind::SessionComplete,
                t0.as_micros(),
                wall_us,
                transfer_index,
            )
            .with_f64("improvement", record.improvement())
            .with_f64("direct_bps", record.direct_throughput)
            .with_f64("selected_bps", record.selected_throughput),
        );
    }
    record
}

/// Outcome of the failover-enabled remainder phase.
struct RemainderOutcome {
    /// The path that ultimately carried (or failed to carry) the file.
    path: PathSpec,
    /// True if the full remainder was delivered before the horizon.
    finished: bool,
    /// Realized remainder rate: remainder bytes over remainder wall
    /// time (NaN when abandoned).
    rate: f64,
    /// Mid-transfer path switches performed.
    failovers: u32,
    /// Milliseconds spent stalled (zero-progress windows + backoffs).
    stall_ms: u64,
    /// True if every retry and surviving candidate was exhausted.
    abandoned: bool,
}

/// The remainder phase with stall detection, retry/backoff, and
/// mid-transfer failover.
///
/// The transfer is watched in windows of `fo.stall_timeout`. A window
/// that delivers bytes just keeps waiting on the same flow; a window
/// with **zero** progress declares the path stalled. Stalls trigger up
/// to `fo.max_retries` fresh connections on the same path (exponential
/// backoff between them), after which the path is abandoned for good
/// and the best *surviving* candidate — decided by a fresh probe race
/// over every path not yet declared dead — takes over the rest of the
/// file. The overall deadline is still `cfg.horizon` from the start of
/// the remainder; when it expires (or no candidate survives) the
/// transfer is abandoned.
#[allow(clippy::too_many_arguments)] // failover tail shares the session's full parameter set
fn run_remainder_failover(
    transport: &mut dyn Transport,
    predictor: &mut dyn Predictor,
    start_path: PathSpec,
    all_paths: &[PathSpec],
    cfg: &SessionConfig,
    fo: &FailoverConfig,
    transfer_index: u64,
    tel: Option<&Telemetry>,
) -> RemainderOutcome {
    let total = cfg.file_bytes - cfg.probe_bytes;
    let started = transport.now();
    let deadline = started + cfg.horizon;
    let mut path = start_path;
    // Candidates not yet declared dead (current path excluded).
    let mut survivors: Vec<PathSpec> = all_paths.iter().filter(|&&p| p != path).copied().collect();
    let mut remaining = total;
    let mut failovers = 0u32;
    let mut stall_ms = 0u64;
    let mut attempt = 0u32;
    let mut backoff = fo.initial_backoff;

    let abandon = |path: PathSpec, failovers: u32, stall_ms: u64, tel: Option<&Telemetry>| {
        if let Some(tel) = tel {
            tel.metrics.counter("session_abandoned", vec![]).inc();
        }
        RemainderOutcome {
            path,
            finished: false,
            rate: f64::NAN,
            failovers,
            stall_ms,
            abandoned: true,
        }
    };
    let done = |path: PathSpec,
                end: ir_simnet::time::SimTime,
                failovers: u32,
                stall_ms: u64,
                predictor: &mut dyn Predictor| {
        let wall = (end - started).as_secs_f64();
        let rate = if wall > 0.0 {
            total as f64 / wall
        } else {
            f64::INFINITY
        };
        // Feed the realized remainder rate back.
        predictor.observe(&path, rate);
        RemainderOutcome {
            path,
            finished: true,
            rate,
            failovers,
            stall_ms,
            abandoned: false,
        }
    };

    // First attempt rides the winning probe's warm connection (another
    // Range request, §2.1).
    let mut handle = transport.begin_warm(&path, remaining);
    let mut seen = 0u64; // bytes observed on the current handle
    loop {
        let now = transport.now();
        if now >= deadline {
            transport.cancel(handle);
            return abandon(path, failovers, stall_ms, tel);
        }
        let window = fo.stall_timeout.min(deadline - now);
        if let Some(t) = transport.finish(handle, window) {
            return done(path, t.finished, failovers, stall_ms, predictor);
        }
        let delivered = transport.progress(handle);
        if delivered > seen {
            // Progressing, merely slower than the window: keep waiting.
            seen = delivered;
            continue;
        }

        // A full window with zero progress: the path is stalled.
        stall_ms += window.as_micros() / 1000;
        transport.cancel(handle);
        remaining = remaining.saturating_sub(delivered);
        attempt += 1;
        if attempt <= fo.max_retries {
            // Retry the same path on a fresh connection after backoff.
            if let Some(tel) = tel {
                tel.metrics.counter("session_stall_retries", vec![]).inc();
                tel.tracer.record(
                    Event::new(
                        EventKind::Retry,
                        transport.now().as_micros(),
                        transfer_index,
                    )
                    .with_str("fallback", "same_path")
                    .with_u64("attempt", attempt as u64)
                    .with_u64("backoff_us", backoff.as_micros()),
                );
            }
            transport.sleep(backoff);
            stall_ms += backoff.as_micros() / 1000;
            backoff = SimDuration::from_micros(backoff.as_micros().saturating_mul(2));
            if transport.now() >= deadline {
                return abandon(path, failovers, stall_ms, tel);
            }
            handle = transport.begin(&path, remaining);
            seen = 0;
            continue;
        }

        // Retries exhausted: the path is dead to this session. Fail
        // over to the best surviving candidate via a fresh probe race.
        failovers += 1;
        if let Some(tel) = tel {
            tel.metrics.counter("session_failovers", vec![]).inc();
            tel.tracer.record(
                Event::new(
                    EventKind::PathFailover,
                    transport.now().as_micros(),
                    transfer_index,
                )
                .with_str(
                    "from",
                    if path.is_indirect() {
                        "indirect"
                    } else {
                        "direct"
                    },
                )
                .with_u64("survivors", survivors.len() as u64)
                .with_u64("remaining_bytes", remaining),
            );
        }
        if survivors.is_empty() {
            return abandon(path, failovers, stall_ms, tel);
        }
        let now = transport.now();
        if now >= deadline {
            return abandon(path, failovers, stall_ms, tel);
        }
        let window = fo.stall_timeout.min(deadline - now);
        let chunk = remaining.min(cfg.probe_bytes);
        let handles: Vec<Handle> = survivors
            .iter()
            .map(|p| transport.begin(p, chunk))
            .collect();
        match transport.race(&handles, window) {
            Some(win) => {
                for (i, &h) in handles.iter().enumerate() {
                    if i != win.index {
                        transport.cancel(h);
                    }
                }
                path = survivors.remove(win.index);
                remaining -= chunk;
                if remaining == 0 {
                    return done(path, win.timing.finished, failovers, stall_ms, predictor);
                }
                attempt = 0;
                backoff = fo.initial_backoff;
                // The rest rides the race winner's warm connection.
                handle = transport.begin_warm(&path, remaining);
                seen = 0;
            }
            None => {
                // No survivor moved the chunk inside the window: the
                // network is gone as far as this session can tell.
                for &h in &handles {
                    transport.cancel(h);
                }
                stall_ms += window.as_micros() / 1000;
                return abandon(path, failovers, stall_ms, tel);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{DirectOnly, StaticSingle};
    use crate::predictor::FirstPortion;
    use crate::sim_transport::SimTransport;
    use ir_simnet::bandwidth::ConstantProcess;
    use ir_simnet::sim::Network;
    use ir_simnet::topology::{NodeKind, Topology};

    /// A 3-node world where the indirect path is `factor`× the direct
    /// path's rate.
    fn world(direct_rate: f64, overlay_rate: f64) -> (SimTransport, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let c = t.add_node("client", NodeKind::Client);
        let v = t.add_node("relay", NodeKind::Intermediate);
        let s = t.add_node("server", NodeKind::Server);
        let l_cs = t.add_link(c, s, SimDuration::from_millis(80));
        let l_cv = t.add_link(c, v, SimDuration::from_millis(50));
        let l_vs = t.add_link(v, s, SimDuration::from_millis(15));
        let mut net = Network::new(t, 1.0);
        net.set_link_process(l_cs, Box::new(ConstantProcess::new(direct_rate)));
        net.set_link_process(l_cv, Box::new(ConstantProcess::new(overlay_rate)));
        net.set_link_process(l_vs, Box::new(ConstantProcess::new(50e6)));
        (SimTransport::new(net), c, v, s)
    }

    fn run(
        tp: &mut SimTransport,
        policy: &mut dyn SelectionPolicy,
        c: NodeId,
        s: NodeId,
        full: &[NodeId],
        cfg: &SessionConfig,
    ) -> TransferRecord {
        run_session(tp, policy, &mut FirstPortion, c, s, full, 0, cfg)
    }

    fn sel_paths() -> Vec<PathSpec> {
        let (c, v, s) = (NodeId(0), NodeId(1), NodeId(2));
        vec![PathSpec::direct(c, s), PathSpec::indirect(c, s, v)]
    }

    #[test]
    fn measure_all_tie_keeps_direct() {
        // Identical predictions: the direct path probes first and must
        // win the tie — indirection without a measured upgrade is all
        // cost, no benefit.
        let paths = sel_paths();
        let picked = select_measure_all(&paths, &[Some((100.0, 100.0)), Some((100.0, 100.0))])
            .expect("both probes finished");
        assert!(!picked.0.is_indirect(), "tie must keep the direct path");
        assert_eq!(picked.1, 100.0);
    }

    #[test]
    fn measure_all_strictly_better_indirect_wins() {
        let paths = sel_paths();
        let picked = select_measure_all(&paths, &[Some((100.0, 100.0)), Some((101.0, 101.0))])
            .expect("both probes finished");
        assert!(picked.0.is_indirect());
    }

    #[test]
    fn measure_all_never_selects_indirect_on_zero_or_nan_probe() {
        let paths = sel_paths();
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            // Dead indirect probe vs a modest direct: direct wins.
            let picked = select_measure_all(&paths, &[Some((10.0, 10.0)), Some((bad, bad))])
                .expect("direct finished");
            assert!(!picked.0.is_indirect(), "indirect won on probe rate {bad}");
            // Even when the *direct* probe also died, a dead indirect
            // probe must not be promoted.
            let picked = select_measure_all(&paths, &[None, Some((bad, bad))]);
            assert!(
                picked.is_none_or(|(p, _)| !p.is_indirect()),
                "dead indirect probe selected on rate {bad}"
            );
        }
    }

    #[test]
    fn measure_all_nan_prediction_never_replaces_a_real_one() {
        // A NaN prediction on the indirect leg (e.g. a pathological
        // predictor) must not unseat the direct measurement, whichever
        // side of it the direct probe sits.
        let paths = sel_paths();
        let picked = select_measure_all(&paths, &[Some((5.0, 5.0)), Some((50.0, f64::NAN))])
            .expect("direct finished");
        assert!(!picked.0.is_indirect());
        // And a NaN direct prediction still beats "nothing at all" —
        // the session falls back to direct, never to a dead relay.
        let picked = select_measure_all(&paths, &[Some((f64::NAN, f64::NAN)), None])
            .expect("direct is the fallback");
        assert!(!picked.0.is_indirect());
    }

    #[test]
    fn fast_indirect_path_gets_selected_and_improves() {
        let (mut tp, c, v, s) = world(100_000.0, 800_000.0);
        let cfg = SessionConfig::paper_defaults();
        let rec = run(&mut tp, &mut StaticSingle(v), c, s, &[v], &cfg);
        assert!(rec.chose_indirect(), "should pick the relay");
        assert!(
            rec.improvement() > 0.5,
            "expected big improvement, got {}",
            rec.improvement()
        );
        assert!(!rec.probe_timeout);
        assert!(rec.probe_throughput > 100_000.0);
    }

    #[test]
    fn slow_indirect_path_not_selected() {
        let (mut tp, c, v, s) = world(800_000.0, 50_000.0);
        let cfg = SessionConfig::paper_defaults();
        let rec = run(&mut tp, &mut StaticSingle(v), c, s, &[v], &cfg);
        assert!(!rec.chose_indirect(), "direct should win the race");
        // Improvement ~0 modulo probe overhead and shared-access
        // contention; certainly not a huge gain or catastrophic loss.
        assert!(rec.improvement().abs() < 0.5, "{}", rec.improvement());
    }

    #[test]
    fn direct_only_policy_improvement_near_zero() {
        let (mut tp, c, _, s) = world(300_000.0, 1_000.0);
        let cfg = SessionConfig::paper_defaults();
        let rec = run(&mut tp, &mut DirectOnly, c, s, &[], &cfg);
        assert!(!rec.chose_indirect());
        // Both processes download the same file on the same path
        // concurrently → equal throughput → improvement ≈ 0.
        assert!(rec.improvement().abs() < 0.05, "{}", rec.improvement());
        assert!(rec.probe_throughput.is_nan());
    }

    #[test]
    fn forked_control_removes_interference() {
        let (mut tp, c, v, s) = world(200_000.0, 900_000.0);
        let mut cfg = SessionConfig::paper_defaults();
        cfg.control = ControlMode::Forked;
        let rec = run(&mut tp, &mut StaticSingle(v), c, s, &[v], &cfg);
        // With an isolated control, the direct throughput is the path's
        // clean rate (no probe contention), so improvement is measured
        // against an undisturbed baseline.
        assert!(
            rec.direct_throughput > 150_000.0,
            "{}",
            rec.direct_throughput
        );
        assert!(rec.chose_indirect());
    }

    #[test]
    fn measure_all_matches_first_to_finish_on_clear_winner() {
        let (mut tp1, c, v, s) = world(100_000.0, 700_000.0);
        let cfg_race = SessionConfig::paper_defaults();
        let r1 = run(&mut tp1, &mut StaticSingle(v), c, s, &[v], &cfg_race);

        let (mut tp2, c2, v2, s2) = world(100_000.0, 700_000.0);
        let mut cfg_all = SessionConfig::paper_defaults();
        cfg_all.probe_mode = ProbeMode::MeasureAll;
        let r2 = run(&mut tp2, &mut StaticSingle(v2), c2, s2, &[v2], &cfg_all);

        assert_eq!(r1.chose_indirect(), r2.chose_indirect());
        assert!(r1.chose_indirect());
    }

    #[test]
    fn probe_timeout_falls_back_to_direct() {
        let (mut tp, c, v, s) = world(
            ir_simnet::bandwidth::MIN_RATE,
            ir_simnet::bandwidth::MIN_RATE,
        );
        let mut cfg = SessionConfig::paper_defaults();
        cfg.horizon = SimDuration::from_secs(5);
        let rec = run(&mut tp, &mut StaticSingle(v), c, s, &[v], &cfg);
        assert!(rec.probe_timeout);
        assert!(!rec.chose_indirect());
        assert_eq!(rec.selected_throughput, 0.0);
    }

    #[test]
    fn record_carries_candidates() {
        let (mut tp, c, v, s) = world(100_000.0, 500_000.0);
        let cfg = SessionConfig::paper_defaults();
        let rec = run(&mut tp, &mut StaticSingle(v), c, s, &[v], &cfg);
        assert_eq!(rec.candidates, vec![v]);
        assert_eq!(rec.file_bytes, cfg.file_bytes);
    }

    #[test]
    fn traced_session_is_bit_identical_and_emits_events() {
        let (mut tp1, c1, v1, s1) = world(100_000.0, 800_000.0);
        let cfg = SessionConfig::paper_defaults();
        let plain = run(&mut tp1, &mut StaticSingle(v1), c1, s1, &[v1], &cfg);

        let (mut tp2, c2, v2, s2) = world(100_000.0, 800_000.0);
        let tel = Telemetry::new();
        let traced = run_session_traced(
            &mut tp2,
            &mut StaticSingle(v2),
            &mut FirstPortion,
            c2,
            s2,
            &[v2],
            0,
            &cfg,
            Some(&tel),
        );
        assert_eq!(plain, traced, "telemetry changed the record");

        let kinds: Vec<EventKind> = tel.tracer.snapshot().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::SessionStart));
        assert!(kinds.contains(&EventKind::ProbeStart));
        assert!(kinds.contains(&EventKind::ProbeWon));
        assert!(
            kinds.contains(&EventKind::PathSwitch),
            "indirect won → switch"
        );
        assert!(kinds.contains(&EventKind::SessionComplete));
        let snap = tel.metrics.snapshot();
        assert_eq!(snap.counter("session_started", &vec![]), Some(1));
        assert_eq!(snap.counter("session_path_switches", &vec![]), Some(1));
        assert_eq!(snap.counter("session_completed", &vec![]), Some(1));
    }

    #[test]
    fn traced_probe_timeout_emits_retry() {
        let (mut tp, c, v, s) = world(
            ir_simnet::bandwidth::MIN_RATE,
            ir_simnet::bandwidth::MIN_RATE,
        );
        let mut cfg = SessionConfig::paper_defaults();
        cfg.horizon = SimDuration::from_secs(5);
        let tel = Telemetry::new();
        let rec = run_session_traced(
            &mut tp,
            &mut StaticSingle(v),
            &mut FirstPortion,
            c,
            s,
            &[v],
            3,
            &cfg,
            Some(&tel),
        );
        assert!(rec.probe_timeout);
        let kinds: Vec<EventKind> = tel.tracer.snapshot().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::ProbeTimeout));
        assert!(kinds.contains(&EventKind::Retry));
        assert_eq!(
            tel.metrics
                .snapshot()
                .counter("session_probe_timeouts", &vec![]),
            Some(1)
        );
    }

    #[test]
    #[should_panic(expected = "file must exceed the probe")]
    fn config_validation() {
        let mut cfg = SessionConfig::paper_defaults();
        cfg.file_bytes = cfg.probe_bytes;
        cfg.validate();
    }

    /// Like [`world`], but with a fault plan installed. The closure
    /// receives (direct link, client→relay link).
    fn faulty_world(
        direct_rate: f64,
        overlay_rate: f64,
        plan: impl FnOnce(
            ir_simnet::topology::LinkId,
            ir_simnet::topology::LinkId,
        ) -> ir_simnet::faults::FaultPlan,
    ) -> (SimTransport, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let c = t.add_node("client", NodeKind::Client);
        let v = t.add_node("relay", NodeKind::Intermediate);
        let s = t.add_node("server", NodeKind::Server);
        let l_cs = t.add_link(c, s, SimDuration::from_millis(80));
        let l_cv = t.add_link(c, v, SimDuration::from_millis(50));
        let l_vs = t.add_link(v, s, SimDuration::from_millis(15));
        let mut net = Network::new(t, 1.0);
        net.set_link_process(l_cs, Box::new(ConstantProcess::new(direct_rate)));
        net.set_link_process(l_cv, Box::new(ConstantProcess::new(overlay_rate)));
        net.set_link_process(l_vs, Box::new(ConstantProcess::new(50e6)));
        net.set_fault_plan(&plan(l_cs, l_cv));
        (SimTransport::new(net), c, v, s)
    }

    fn quick_failover() -> FailoverConfig {
        FailoverConfig {
            stall_timeout: SimDuration::from_secs(5),
            max_retries: 1,
            initial_backoff: SimDuration::from_secs(1),
        }
    }

    #[test]
    fn failover_recovers_from_mid_transfer_outage() {
        use ir_simnet::faults::FaultPlan;
        use ir_simnet::time::SimTime;
        // Overlay wins the probe (300 KB/s vs 100 KB/s), then its
        // uplink dies at t = 5 s, mid-remainder, and stays dead.
        let (mut tp, c, v, s) = faulty_world(100_000.0, 300_000.0, |_cs, cv| {
            FaultPlan::default().link_outage(cv, SimTime::from_secs(5), SimTime::from_secs(600))
        });
        let mut cfg = SessionConfig::paper_defaults();
        cfg.failover = Some(quick_failover());
        let rec = run(&mut tp, &mut StaticSingle(v), c, s, &[v], &cfg);
        assert!(!rec.abandoned, "direct path survived");
        assert_eq!(rec.failovers, 1, "one switch overlay → direct");
        assert!(!rec.chose_indirect(), "final path is the direct one");
        assert!(rec.stall_ms > 0, "stall windows + backoff were paid");
        assert!(
            rec.selected_throughput > 0.0,
            "transfer completed despite the outage"
        );
    }

    #[test]
    fn failover_abandons_when_nothing_survives() {
        use ir_simnet::faults::FaultPlan;
        use ir_simnet::time::SimTime;
        // Both paths die at t = 5 s and never come back.
        let (mut tp, c, v, s) = faulty_world(100_000.0, 300_000.0, |cs, cv| {
            FaultPlan::default()
                .link_outage(cs, SimTime::from_secs(5), SimTime::from_secs(10_000))
                .link_outage(cv, SimTime::from_secs(5), SimTime::from_secs(10_000))
        });
        let mut cfg = SessionConfig::paper_defaults();
        cfg.horizon = SimDuration::from_secs(60);
        cfg.failover = Some(quick_failover());
        let rec = run(&mut tp, &mut StaticSingle(v), c, s, &[v], &cfg);
        assert!(rec.abandoned);
        assert!(rec.failovers >= 1);
        assert_eq!(rec.selected_throughput, 0.0, "no fabricated throughput");
        assert_eq!(rec.direct_throughput, 0.0, "control died too");
    }

    #[test]
    fn benign_failover_config_is_a_noop() {
        // On a healthy network a failover-enabled session must produce
        // the identical record: first finish window succeeds, rate math
        // reduces to the single-attempt formula.
        let (mut tp1, c1, v1, s1) = world(100_000.0, 800_000.0);
        let plain = run(
            &mut tp1,
            &mut StaticSingle(v1),
            c1,
            s1,
            &[v1],
            &SessionConfig::paper_defaults(),
        );

        let (mut tp2, c2, v2, s2) = world(100_000.0, 800_000.0);
        let mut cfg = SessionConfig::paper_defaults();
        cfg.failover = Some(FailoverConfig::paper_defaults());
        let with_failover = run(&mut tp2, &mut StaticSingle(v2), c2, s2, &[v2], &cfg);

        assert_eq!(plain, with_failover, "failover changed a healthy run");
        assert_eq!(with_failover.failovers, 0);
        assert_eq!(with_failover.stall_ms, 0);
        assert!(!with_failover.abandoned);
    }

    #[test]
    fn traced_failover_emits_path_failover_event() {
        use ir_simnet::faults::FaultPlan;
        use ir_simnet::time::SimTime;
        let (mut tp, c, v, s) = faulty_world(100_000.0, 300_000.0, |_cs, cv| {
            FaultPlan::default().link_outage(cv, SimTime::from_secs(5), SimTime::from_secs(600))
        });
        let mut cfg = SessionConfig::paper_defaults();
        cfg.failover = Some(quick_failover());
        let tel = std::sync::Arc::new(Telemetry::new());
        tp.network_mut().set_telemetry(Some(tel.clone()));
        let rec = run_session_traced(
            &mut tp,
            &mut StaticSingle(v),
            &mut FirstPortion,
            c,
            s,
            &[v],
            7,
            &cfg,
            Some(tel.as_ref()),
        );
        assert_eq!(rec.failovers, 1);
        let kinds: Vec<EventKind> = tel.tracer.snapshot().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::PathFailover));
        assert!(
            kinds.contains(&EventKind::FaultInjected),
            "simnet fault events also land in the same trace"
        );
        let snap = tel.metrics.snapshot();
        assert_eq!(snap.counter("session_failovers", &vec![]), Some(1));
        assert_eq!(snap.counter("session_stall_retries", &vec![]), Some(1));
        assert_eq!(snap.counter("session_abandoned", &vec![]), None);
    }

    /// An unresolvable candidate path is dropped from the race, counted
    /// in `path_unresolvable`, and traced — never silently skipped, and
    /// never fatal to the session.
    #[test]
    fn unresolvable_path_is_counted_traced_and_dropped() {
        let (mut tp, c, v, s) = world(100_000.0, 300_000.0);
        // NodeId(9) does not exist in the 3-node world, so a chain
        // through it has no links to map onto.
        let ghost = NodeId(9);
        let paths = vec![
            PathSpec::chain(c, s, &[ghost]),
            PathSpec::chain(c, s, &[v, ghost]),
            PathSpec::indirect(c, s, v),
        ];
        let tel = Telemetry::new();
        let rec = run_paths_session_traced(
            &mut tp,
            &mut FirstPortion,
            c,
            s,
            &paths,
            vec![ghost, v],
            0,
            &SessionConfig::paper_defaults(),
            Some(&tel),
        );
        // The resolvable indirect path still raced (and, being 3×
        // direct, won).
        assert!(rec.chose_indirect());
        assert_eq!(rec.selected.via(), Some(v));
        let snap = tel.metrics.snapshot();
        assert_eq!(snap.counter("path_unresolvable", &vec![]), Some(2));
        let unresolved: Vec<String> = tel
            .tracer
            .snapshot()
            .iter()
            .filter(|e| e.kind == EventKind::PathUnresolvable)
            .flat_map(|e| e.attrs.iter())
            .filter_map(|(k, a)| match (*k, a) {
                ("path", ir_telemetry::trace::Attr::Str(s)) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(unresolved.len(), 2);
        assert!(unresolved.iter().all(|p| p.contains("9")), "{unresolved:?}");
    }
}
