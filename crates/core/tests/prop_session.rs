//! Randomized property tests for the session protocol over
//! constant-rate worlds, where ground truth is computable by hand.
//!
//! These were proptest-based; the offline build has no proptest, so the
//! same invariants are checked over seeded random case sweeps (every
//! failure reproduces from the printed case seed).

use ir_core::{
    run_session, FirstPortion, PathSpec, SessionConfig, SimTransport, StaticSingle, TransferRecord,
    UtilizationTracker,
};
use ir_simnet::bandwidth::ConstantProcess;
use ir_simnet::sim::Network;
use ir_simnet::time::SimDuration;
use ir_simnet::topology::{NodeKind, Sharing, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// client -> server (direct at `direct`), client -> relay -> server
/// (overlay leg at `overlay`, relay-server leg fast).
fn world(
    direct: f64,
    overlay: f64,
) -> (
    SimTransport,
    ir_simnet::topology::NodeId,
    ir_simnet::topology::NodeId,
    ir_simnet::topology::NodeId,
) {
    let mut t = Topology::new();
    let c = t.add_node("c", NodeKind::Client);
    let v = t.add_node("v", NodeKind::Intermediate);
    let s = t.add_node("s", NodeKind::Server);
    let l0 = t.add_link_shared(c, s, SimDuration::from_millis(80), Sharing::PerFlow);
    let l1 = t.add_link_shared(c, v, SimDuration::from_millis(75), Sharing::PerFlow);
    let l2 = t.add_link_shared(v, s, SimDuration::from_millis(8), Sharing::PerFlow);
    let mut net = Network::new(t, 1.0);
    net.set_link_process(l0, Box::new(ConstantProcess::new(direct)));
    net.set_link_process(l1, Box::new(ConstantProcess::new(overlay)));
    net.set_link_process(l2, Box::new(ConstantProcess::new(50e6)));
    (SimTransport::new(net), c, v, s)
}

fn run_one(direct: f64, overlay: f64) -> TransferRecord {
    let (mut tp, c, v, s) = world(direct, overlay);
    let mut policy = StaticSingle(v);
    let mut predictor = FirstPortion;
    run_session(
        &mut tp,
        &mut policy,
        &mut predictor,
        c,
        s,
        &[v],
        0,
        &SessionConfig::paper_defaults(),
    )
}

#[test]
fn clearly_better_overlay_is_chosen() {
    for case in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(0x5E_0000 + case);
        let direct = rng.gen_range(30_000.0..150_000.0);
        let factor = rng.gen_range(2.5..8.0);
        let rec = run_one(direct, direct * factor);
        assert!(
            rec.chose_indirect(),
            "case {case}: 2.5x+ faster relay not chosen"
        );
        assert!(
            rec.improvement() > 0.2,
            "case {case}: improvement {}",
            rec.improvement()
        );
        assert!(!rec.probe_timeout, "case {case}");
    }
}

#[test]
fn clearly_worse_overlay_is_rejected() {
    for case in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(0x5E_1000 + case);
        let direct = rng.gen_range(100_000.0..400_000.0);
        let factor = rng.gen_range(0.05..0.4);
        let rec = run_one(direct, direct * factor);
        assert!(!rec.chose_indirect(), "case {case}: slow relay chosen");
        // Direct selected: treatment ~= control; no large deviation.
        assert!(
            rec.improvement().abs() < 0.25,
            "case {case}: improvement {}",
            rec.improvement()
        );
    }
}

#[test]
fn improvement_tracks_rate_ratio_on_constant_paths() {
    for case in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(0x5E_2000 + case);
        let direct = rng.gen_range(40_000.0..120_000.0);
        let factor = rng.gen_range(2.0..6.0);
        let rec = run_one(direct, direct * factor);
        assert!(rec.chose_indirect(), "case {case}");
        // With constant rates, improvement ≈ factor − 1 up to TCP and
        // probe overheads (which only push it down, never up, and by a
        // bounded amount).
        let imp = rec.improvement();
        assert!(
            imp <= factor - 1.0 + 0.15,
            "case {case}: imp {imp} vs factor {factor}"
        );
        assert!(
            imp >= (factor - 1.0) * 0.4 - 0.1,
            "case {case}: imp {imp} too low for factor {factor}"
        );
    }
}

#[test]
fn throughputs_never_exceed_link_rates() {
    for case in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(0x5E_3000 + case);
        let direct = rng.gen_range(30_000.0..300_000.0);
        let overlay = rng.gen_range(30_000.0..300_000.0);
        let rec = run_one(direct, overlay);
        let cap = direct.max(overlay) + 1.0;
        assert!(rec.direct_throughput <= direct + 1.0, "case {case}");
        assert!(rec.selected_throughput <= cap, "case {case}");
        if rec.selected_path_rate.is_finite() {
            assert!(rec.selected_path_rate <= cap, "case {case}");
        }
        assert!(rec.direct_throughput > 0.0, "case {case}");
    }
}

#[test]
fn utilization_tracker_is_consistent_with_records() {
    use ir_simnet::topology::NodeId;
    for case in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(0x5E_4000 + case);
        let outcomes: Vec<bool> = (0..rng.gen_range(1..50usize))
            .map(|_| rng.gen::<bool>())
            .collect();
        let client = NodeId(0);
        let server = NodeId(1);
        let via = NodeId(2);
        let mut tracker = UtilizationTracker::new();
        let mut chosen = 0u64;
        for &pick in &outcomes {
            let selected = if pick {
                chosen += 1;
                PathSpec::indirect(client, server, via)
            } else {
                PathSpec::direct(client, server)
            };
            tracker.observe(&TransferRecord {
                client,
                server,
                started: ir_simnet::time::SimTime::ZERO,
                file_bytes: 1,
                selected,
                candidates: vec![via],
                direct_throughput: 1.0,
                selected_throughput: 1.0,
                probe_throughput: 1.0,
                selected_path_rate: 1.0,
                probe_timeout: false,
                failovers: 0,
                stall_ms: 0,
                abandoned: false,
            });
        }
        let u = tracker.utilization(client, via).unwrap();
        assert!(
            (u - chosen as f64 / outcomes.len() as f64).abs() < 1e-12,
            "case {case}"
        );
        assert_eq!(tracker.appeared_count(client, via), outcomes.len() as u64);
        assert_eq!(tracker.chosen_count(client, via), chosen);
    }
}
