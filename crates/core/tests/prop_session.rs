//! Property tests for the session protocol over constant-rate worlds,
//! where ground truth is computable by hand.

use ir_core::{
    run_session, FirstPortion, PathSpec, SessionConfig, SimTransport, StaticSingle,
    TransferRecord, UtilizationTracker,
};
use ir_simnet::bandwidth::ConstantProcess;
use ir_simnet::sim::Network;
use ir_simnet::time::SimDuration;
use ir_simnet::topology::{NodeKind, Sharing, Topology};
use proptest::prelude::*;

/// client -> server (direct at `direct`), client -> relay -> server
/// (overlay leg at `overlay`, relay-server leg fast).
fn world(direct: f64, overlay: f64) -> (SimTransport, ir_simnet::topology::NodeId, ir_simnet::topology::NodeId, ir_simnet::topology::NodeId) {
    let mut t = Topology::new();
    let c = t.add_node("c", NodeKind::Client);
    let v = t.add_node("v", NodeKind::Intermediate);
    let s = t.add_node("s", NodeKind::Server);
    let l0 = t.add_link_shared(c, s, SimDuration::from_millis(80), Sharing::PerFlow);
    let l1 = t.add_link_shared(c, v, SimDuration::from_millis(75), Sharing::PerFlow);
    let l2 = t.add_link_shared(v, s, SimDuration::from_millis(8), Sharing::PerFlow);
    let mut net = Network::new(t, 1.0);
    net.set_link_process(l0, Box::new(ConstantProcess::new(direct)));
    net.set_link_process(l1, Box::new(ConstantProcess::new(overlay)));
    net.set_link_process(l2, Box::new(ConstantProcess::new(50e6)));
    (SimTransport::new(net), c, v, s)
}

fn run_one(direct: f64, overlay: f64) -> TransferRecord {
    let (mut tp, c, v, s) = world(direct, overlay);
    let mut policy = StaticSingle(v);
    let mut predictor = FirstPortion;
    run_session(
        &mut tp,
        &mut policy,
        &mut predictor,
        c,
        s,
        &[v],
        0,
        &SessionConfig::paper_defaults(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn clearly_better_overlay_is_chosen(
        direct in 30_000.0f64..150_000.0,
        factor in 2.5f64..8.0,
    ) {
        let rec = run_one(direct, direct * factor);
        prop_assert!(rec.chose_indirect(), "2.5x+ faster relay not chosen");
        prop_assert!(rec.improvement() > 0.2, "improvement {}", rec.improvement());
        prop_assert!(!rec.probe_timeout);
    }

    #[test]
    fn clearly_worse_overlay_is_rejected(
        direct in 100_000.0f64..400_000.0,
        factor in 0.05f64..0.4,
    ) {
        let rec = run_one(direct, direct * factor);
        prop_assert!(!rec.chose_indirect(), "slow relay chosen");
        // Direct selected: treatment ~= control; no large deviation.
        prop_assert!(rec.improvement().abs() < 0.25, "improvement {}", rec.improvement());
    }

    #[test]
    fn improvement_tracks_rate_ratio_on_constant_paths(
        direct in 40_000.0f64..120_000.0,
        factor in 2.0f64..6.0,
    ) {
        let rec = run_one(direct, direct * factor);
        prop_assert!(rec.chose_indirect());
        // With constant rates, improvement ≈ factor − 1 up to TCP and
        // probe overheads (which only push it down, never up, and by a
        // bounded amount).
        let imp = rec.improvement();
        prop_assert!(imp <= factor - 1.0 + 0.15, "imp {imp} vs factor {factor}");
        prop_assert!(imp >= (factor - 1.0) * 0.4 - 0.1, "imp {imp} too low for factor {factor}");
    }

    #[test]
    fn throughputs_never_exceed_link_rates(
        direct in 30_000.0f64..300_000.0,
        overlay in 30_000.0f64..300_000.0,
    ) {
        let rec = run_one(direct, overlay);
        let cap = direct.max(overlay) + 1.0;
        prop_assert!(rec.direct_throughput <= direct + 1.0);
        prop_assert!(rec.selected_throughput <= cap);
        if rec.selected_path_rate.is_finite() {
            prop_assert!(rec.selected_path_rate <= cap);
        }
        prop_assert!(rec.direct_throughput > 0.0);
    }

    #[test]
    fn utilization_tracker_is_consistent_with_records(
        outcomes in prop::collection::vec(any::<bool>(), 1..50),
    ) {
        use ir_simnet::topology::NodeId;
        let client = NodeId(0);
        let server = NodeId(1);
        let via = NodeId(2);
        let mut tracker = UtilizationTracker::new();
        let mut chosen = 0u64;
        for &pick in &outcomes {
            let selected = if pick {
                chosen += 1;
                PathSpec::indirect(client, server, via)
            } else {
                PathSpec::direct(client, server)
            };
            tracker.observe(&TransferRecord {
                client,
                server,
                started: ir_simnet::time::SimTime::ZERO,
                file_bytes: 1,
                selected,
                candidates: vec![via],
                direct_throughput: 1.0,
                selected_throughput: 1.0,
                probe_throughput: 1.0,
                selected_path_rate: 1.0,
                probe_timeout: false,
            });
        }
        let u = tracker.utilization(client, via).unwrap();
        prop_assert!((u - chosen as f64 / outcomes.len() as f64).abs() < 1e-12);
        prop_assert_eq!(tracker.appeared_count(client, via), outcomes.len() as u64);
        prop_assert_eq!(tracker.chosen_count(client, via), chosen);
    }
}
