//! Offline stub of `serde` (the build environment has no crates.io).
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` — no
//! code path serializes anything (there is no `serde_json` or similar
//! in the tree). This stub keeps the derive attributes compiling: the
//! traits are empty markers and the derive macros (from the sibling
//! `serde_derive` stub) expand to nothing.

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
