//! Offline mini-criterion (the build environment has no crates.io).
//!
//! Implements the API subset the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros — with a deliberately simple measurement
//! loop: a short warm-up, then `sample_size` timed samples, reporting
//! the per-iteration mean and min. No statistics, plots, or baselines;
//! enough to compare hot paths before and after a change.

use std::time::{Duration, Instant};

/// Opaque value barrier, forwarded to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Runs `f` repeatedly, recording wall time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and per-sample iteration-count calibration: aim for
        // samples of at least ~5 ms so cheap closures are resolvable.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(5);
        self.iters_per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;

        self.results.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.results
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

fn report(name: &str, results: &[Duration]) {
    if results.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let mean: Duration = results.iter().sum::<Duration>() / results.len() as u32;
    let min = results.iter().min().copied().unwrap_or_default();
    println!("{name:<50} mean {mean:>12.3?}   min {min:>12.3?}");
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            results: Vec::new(),
            iters_per_sample: 1,
        };
        f(&mut b);
        report(name, &b.results);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            parent: self,
            sample_size: None,
        }
    }
}

/// A group of related benchmarks (shares settings).
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        let mut b = Bencher {
            samples,
            results: Vec::new(),
            iters_per_sample: 1,
        };
        f(&mut b);
        report(&format!("  {name}"), &b.results);
        self
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; this
            // mini-harness ignores them.
            $( $group(); )+
        }
    };
}
