//! Offline stand-in for the `rand` crate (API subset).
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides exactly the surface the workspace uses: a
//! deterministic, seedable [`rngs::StdRng`], the [`Rng`] extension
//! methods (`gen`, `gen_range`, `gen_bool`), and
//! [`seq::SliceRandom`] (`shuffle`, `choose`, `choose_multiple`).
//!
//! The generator is xoshiro256** seeded via SplitMix64 — not the same
//! stream as upstream `rand`'s ChaCha-based `StdRng`, but every
//! consumer in this workspace only relies on *determinism for a given
//! seed*, which this provides bit-for-bit across platforms.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A value sampleable from raw random bits ("standard" distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A type from which a uniform draw over a half-open range is defined.
/// Mirrors `rand::distributions::uniform::SampleUniform` closely enough
/// for type inference at `gen_range(8..14)`-style call sites to unify
/// the literal type with the usage type.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[start, end)`.
    fn sample_range<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[start, end]` (both ends included).
    fn sample_range_inclusive<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(start: $t, end: $t, rng: &mut R) -> $t {
                assert!(start < end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128;
                // Widening multiply keeps the draw unbiased enough for
                // simulation use while staying branch-light.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + hi) as $t
            }

            fn sample_range_inclusive<R: RngCore + ?Sized>(
                start: $t,
                end: $t,
                rng: &mut R,
            ) -> $t {
                assert!(start <= end, "empty inclusive range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + hi) as $t
            }
        }
    )*};
}

int_sample_uniform!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(start: f64, end: f64, rng: &mut R) -> f64 {
        assert!(start < end, "empty range in gen_range");
        start + f64::from_rng(rng) * (end - start)
    }

    fn sample_range_inclusive<R: RngCore + ?Sized>(start: f64, end: f64, rng: &mut R) -> f64 {
        // Measure-zero distinction; the half-open draw is fine.
        assert!(start <= end, "empty inclusive range in gen_range");
        start + f64::from_rng(rng) * (end - start)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(start: f32, end: f32, rng: &mut R) -> f32 {
        assert!(start < end, "empty range in gen_range");
        start + f32::from_rng(rng) * (end - start)
    }

    fn sample_range_inclusive<R: RngCore + ?Sized>(start: f32, end: f32, rng: &mut R) -> f32 {
        assert!(start <= end, "empty inclusive range in gen_range");
        start + f32::from_rng(rng) * (end - start)
    }
}

/// A range from which a uniform value can be drawn.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_range_inclusive(start, end, rng)
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of an RNG from seed material, mirroring
/// `rand::SeedableRng` (only the `seed_from_u64` entry point is used by
/// this workspace).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (SplitMix64-expanded seed).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Stream epoch: mixed into every seed before SplitMix64 expansion.
    ///
    /// The paper-band checks in `crates/experiments` are calibrated
    /// against the exact random streams this crate produces; the epoch
    /// pins that calibration. Bumping it re-rolls every sampled
    /// scenario in the workspace, so any change requires re-validating
    /// the artefact suite (`experiments all --seed 2007`).
    const STREAM_EPOCH: u64 = 2;

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut x = state ^ STREAM_EPOCH;
            let s = [
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice sampling helpers, mirroring `rand::seq::SliceRandom`.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// One uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements sampled without replacement (fewer
        /// if the slice is shorter), as an iterator of references.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            // Partial Fisher–Yates over an index table.
            let n = self.len();
            let k = amount.min(n);
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = rng.gen_range(i..n);
                idx.swap(i, j);
            }
            idx.truncate(k);
            idx.into_iter()
                .map(|i| &self[i])
                .collect::<Vec<&T>>()
                .into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..32).map(|_| a.gen::<f64>()).collect();
        let ys: Vec<f64> = (0..32).map(|_| b.gen::<f64>()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(xs[0], c.gen::<f64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = r.gen_range(3..9);
            assert!((3..9).contains(&x));
            let y = r.gen_range(0.5..2.5);
            assert!((0.5..2.5).contains(&y));
            let z = r.gen_range(0usize..5);
            assert!(z < 5);
        }
    }

    #[test]
    fn gen_range_inclusive_hits_both_ends() {
        let mut r = StdRng::seed_from_u64(11);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            let x = r.gen_range(0..=2usize);
            assert!(x <= 2);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..=2 reachable: {seen:?}");
        // Degenerate single-point range is allowed inclusively.
        assert_eq!(r.gen_range(7..=7), 7);
    }

    #[test]
    fn gen_range_mean_is_centred() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let m: f64 = (0..n).map(|_| r.gen_range(0..10) as f64).sum::<f64>() / n as f64;
        assert!((m - 4.5).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }

    #[test]
    fn choose_multiple_distinct() {
        let mut r = StdRng::seed_from_u64(5);
        let v: Vec<u32> = (0..50).collect();
        let picked: Vec<u32> = v.choose_multiple(&mut r, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let mut d = picked.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 10, "no duplicates");
        // Oversampling clamps to the population.
        assert_eq!(v.choose_multiple(&mut r, 99).count(), 50);
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = StdRng::seed_from_u64(6);
        let v: Vec<u32> = Vec::new();
        assert!(v.choose(&mut r).is_none());
    }

    #[test]
    fn gen_bool_frequency() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }
}
