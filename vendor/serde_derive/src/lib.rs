//! Offline stub of `serde_derive`: both derives accept the input (and
//! any `#[serde(...)]` helper attributes) and expand to nothing, so
//! `#[derive(Serialize, Deserialize)]` type-checks without generating
//! impls nobody in this workspace calls.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
