//! Offline API-compatible subset of the `loom` model checker.
//!
//! The build environment has no crates.io access, so this shim provides
//! the slice of loom's surface the workspace's model tests use:
//! [`model`], [`thread::spawn`]/[`thread::JoinHandle`], and re-exported
//! `sync` primitives.
//!
//! # What it models — and what it does not
//!
//! Real loom explores every memory-model-legal interleaving of its
//! instrumented primitives. This shim is much narrower: it explores
//! every **thread completion order**. Threads spawned inside the model
//! closure do not run concurrently; their bodies execute sequentially,
//! in an order dictated by the permutation under test, and [`model`]
//! re-runs the closure once per permutation of `0..n` spawn slots
//! (bounded — see [`MAX_THREADS`]).
//!
//! That is exactly the hazard class the simnet merge-model test fences:
//! "do the merged rates depend on which worker finished first?" It is
//! **not** sufficient to verify lock-free algorithms, atomics
//! orderings, or anything sensitive to instruction-level interleaving —
//! don't use this shim for those.
//!
//! # Execution model
//!
//! Within one iteration, [`thread::spawn`] *defers* the closure and
//! returns a [`thread::JoinHandle`]. When a handle is joined, every
//! not-yet-run thread that the current permutation places **before**
//! the joined thread runs first (it "completed earlier"), then the
//! joined thread runs and its value is returned. Threads never joined
//! are drained, in permutation order, when the model closure returns.
//! Spawning after the first `join` is supported only for threads the
//! permutation places later; model tests should spawn first, then join.

use std::cell::RefCell;

/// Permutation-bound: `model` explores `n!` orders, so the spawn count
/// per iteration is capped to keep runs tractable.
pub const MAX_THREADS: usize = 7;

thread_local! {
    static SCHED: RefCell<Option<Scheduler>> = const { RefCell::new(None) };
}

#[derive(Default)]
struct Scheduler {
    /// Execution order under test: `perm[k]` is the spawn id that
    /// completes k-th.
    perm: Vec<usize>,
    /// Deferred thread bodies by spawn id (`None` once run).
    pending: Vec<Option<Box<dyn FnOnce()>>>,
    /// Spawn ids already executed.
    executed: Vec<bool>,
}

impl Scheduler {
    /// Runs every pending thread at permutation positions `..=pos`.
    fn run_through(&mut self, pos: usize) {
        for k in 0..=pos.min(self.perm.len().saturating_sub(1)) {
            let id = self.perm[k];
            if id >= self.pending.len() || self.executed[id] {
                continue;
            }
            if let Some(body) = self.pending[id].take() {
                self.executed[id] = true;
                body();
            }
        }
    }

    fn position_of(&self, id: usize) -> usize {
        self.perm
            .iter()
            .position(|&p| p == id)
            .unwrap_or(self.perm.len().saturating_sub(1))
    }
}

/// Thread-model API mirroring `loom::thread`.
pub mod thread {
    use super::{Scheduler, MAX_THREADS, SCHED};
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Handle to a deferred model thread; [`JoinHandle::join`] drives
    /// the scheduled completion order (see crate docs).
    pub struct JoinHandle<T> {
        id: usize,
        slot: Rc<RefCell<Option<T>>>,
    }

    impl<T> JoinHandle<T> {
        /// Completes every thread scheduled before this one, then this
        /// one, and returns its value (mirrors `std`'s signature).
        pub fn join(self) -> std::thread::Result<T> {
            SCHED.with(|s| {
                let mut s = s.borrow_mut();
                let sched = s
                    .as_mut()
                    .expect("loom::thread::JoinHandle::join outside loom::model");
                let pos = sched.position_of(self.id);
                sched.run_through(pos);
            });
            let value = self
                .slot
                .borrow_mut()
                .take()
                .expect("model thread did not produce a value");
            Ok(value)
        }
    }

    /// Defers `f` as the next model thread of the current iteration.
    ///
    /// # Panics
    ///
    /// Panics outside [`super::model`] or past [`MAX_THREADS`] spawns.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + 'static,
        T: 'static,
    {
        let slot: Rc<RefCell<Option<T>>> = Rc::new(RefCell::new(None));
        let writer = Rc::clone(&slot);
        let id = SCHED.with(|s| {
            let mut s = s.borrow_mut();
            let sched: &mut Scheduler =
                s.as_mut().expect("loom::thread::spawn outside loom::model");
            let id = sched.pending.len();
            assert!(
                id < MAX_THREADS,
                "loom shim explores n! completion orders; cap is {MAX_THREADS} threads"
            );
            sched
                .pending
                .push(Some(Box::new(move || *writer.borrow_mut() = Some(f()))));
            sched.executed.push(false);
            id
        });
        JoinHandle { id, slot }
    }
}

/// Synchronization primitives mirroring `loom::sync`. Model threads run
/// sequentially on one OS thread, so `std`'s types are already correct
/// here; they are re-exported for API compatibility.
pub mod sync {
    pub use std::sync::{Arc, Mutex, MutexGuard};
}

/// All permutations of `0..n` (Heap's algorithm, deterministic order).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut a: Vec<usize> = (0..n).collect();
    fn heap(k: usize, a: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k <= 1 {
            out.push(a.clone());
            return;
        }
        for i in 0..k {
            heap(k - 1, a, out);
            if k.is_multiple_of(2) {
                a.swap(i, k - 1);
            } else {
                a.swap(0, k - 1);
            }
        }
    }
    heap(n, &mut a, &mut out);
    out
}

/// Runs one iteration of `f` under completion order `perm`, returning
/// how many threads it spawned.
fn run_iteration<F: Fn()>(f: &F, perm: Vec<usize>) -> usize {
    SCHED.with(|s| {
        *s.borrow_mut() = Some(Scheduler {
            perm,
            ..Scheduler::default()
        })
    });
    f();
    SCHED.with(|s| {
        let mut s = s.borrow_mut();
        let sched = s.as_mut().expect("scheduler vanished mid-iteration");
        // Drain threads the closure never joined, in permutation order.
        let last = sched.perm.len().saturating_sub(1);
        sched.run_through(last);
        let n = sched.pending.len();
        *s = None;
        n
    })
}

/// Checks `f` under every thread completion order (see crate docs for
/// the shim's exact semantics). The closure runs once to discover its
/// spawn count `n`, then once per permutation of `0..n`.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    // Discovery pass under the identity order (also a real test run).
    let n = run_iteration(&f, (0..MAX_THREADS).collect());
    for perm in permutations(n) {
        run_iteration(&f, perm);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn permutations_cover_n_factorial() {
        assert_eq!(permutations(0).len(), 1);
        assert_eq!(permutations(3).len(), 6);
        let mut p4 = permutations(4);
        p4.sort();
        p4.dedup();
        assert_eq!(p4.len(), 24);
    }

    #[test]
    fn model_explores_every_completion_order() {
        static ORDERS: AtomicUsize = AtomicUsize::new(0);
        ORDERS.store(0, Ordering::SeqCst);
        model(|| {
            let log: sync::Arc<sync::Mutex<Vec<u32>>> =
                sync::Arc::new(sync::Mutex::new(Vec::new()));
            let handles: Vec<_> = (0u32..3)
                .map(|i| {
                    let log = sync::Arc::clone(&log);
                    thread::spawn(move || log.lock().unwrap().push(i))
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let seen = log.lock().unwrap().clone();
            // Completion order varies; membership never does.
            let mut sorted = seen.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2]);
            if seen == vec![2, 1, 0] {
                ORDERS.fetch_add(1, Ordering::SeqCst);
            }
        });
        // The fully-reversed order was among those explored.
        assert!(ORDERS.load(Ordering::SeqCst) >= 1);
    }

    #[test]
    fn join_returns_thread_value() {
        model(|| {
            let h = thread::spawn(|| 41 + 1);
            assert_eq!(h.join().unwrap(), 42);
        });
    }
}
