//! Offline stand-in for the `bytes` crate (API subset).
//!
//! Only [`BytesMut`] is provided, with the handful of methods the HTTP
//! codec and relay use: construction, `extend_from_slice`, `split_to`,
//! `to_vec`, and slice access through `Deref`. Backed by a plain `Vec`
//! — `split_to` is O(n) in the retained suffix, which is fine at the
//! message sizes involved (heads of a few hundred bytes).

use std::ops::{Deref, DerefMut};

/// A growable byte buffer with cheap front-splitting semantics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    /// Appends `src` to the end of the buffer.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Removes and returns the first `at` bytes; the buffer keeps the
    /// rest.
    ///
    /// # Panics
    ///
    /// Panics if `at > len()`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.inner.len(), "split_to out of bounds");
        let rest = self.inner.split_off(at);
        let head = std::mem::replace(&mut self.inner, rest);
        BytesMut { inner: head }
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Drops all bytes.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut {
            inner: src.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::BytesMut;

    #[test]
    fn split_to_takes_prefix() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"hello world");
        let head = b.split_to(6);
        assert_eq!(&head[..], b"hello ");
        assert_eq!(&b[..], b"world");
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn split_to_zero_and_all() {
        let mut b = BytesMut::from(&b"abc"[..]);
        let none = b.split_to(0);
        assert!(none.is_empty());
        let all = b.split_to(3);
        assert_eq!(&all[..], b"abc");
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn split_past_end_panics() {
        let mut b = BytesMut::new();
        b.split_to(1);
    }

    #[test]
    fn to_vec_round_trips() {
        let mut b = BytesMut::with_capacity(8);
        b.extend_from_slice(&[1, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }
}
